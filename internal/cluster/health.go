package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"omini/internal/govern"
)

// Run drives the membership health checker until ctx is cancelled:
// every ProbeInterval it probes each peer's /healthz and /readyz,
// ejects a node from the ring after FailThreshold consecutive
// failures, and re-admits it on the first success after. Run returns
// ctx's error, so it slots into an errgroup-style shutdown.
func (c *Coordinator) Run(ctx context.Context) error {
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		// Fresh guard per cycle: the Guard is single-goroutine state and
		// each probe sweep is its own unit of governed work.
		c.probeAll(ctx, govern.NewGuard(ctx, govern.Unlimited()))
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}

// probeAll runs one health sweep over every member. Membership state
// mutates under c.mu; a transition (ejection or re-admission) rebuilds
// the ring snapshot.
func (c *Coordinator) probeAll(ctx context.Context, g *govern.Guard) {
	c.mu.RLock()
	targets := make([]*member, 0, len(c.members))
	for _, m := range c.members {
		if err := g.Poll(); err != nil {
			c.mu.RUnlock()
			return
		}
		targets = append(targets, m)
	}
	c.mu.RUnlock()

	changed := false
	var readmitted []string
	for _, m := range targets {
		if err := g.Poll(); err != nil {
			return
		}
		c.stats.Add(SeriesProbes, 1)
		err := c.probeOne(ctx, m.url)
		c.mu.Lock()
		if err != nil {
			c.stats.Add(SeriesProbeFailures, 1)
			m.fails++
			m.lastErr = err.Error()
			if m.healthy && m.fails >= c.cfg.FailThreshold {
				m.healthy = false
				changed = true
				c.stats.Add(SeriesEjections, 1)
				c.log.Warn("cluster member ejected",
					"node", m.id, "fails", m.fails, "err", err.Error())
			}
		} else {
			if !m.healthy {
				m.healthy = true
				changed = true
				readmitted = append(readmitted, m.id)
				c.stats.Add(SeriesReadmissions, 1)
				c.log.Info("cluster member readmitted", "node", m.id)
			}
			m.fails = 0
			m.lastErr = ""
		}
		c.mu.Unlock()
	}
	if changed {
		c.mu.Lock()
		c.ring = c.rebuildLocked(g)
		c.mu.Unlock()
	}
	// Callbacks run after the ring rebuild and outside the lock, so a
	// handler that routes (or syncs rules) sees the new topology.
	if c.cfg.OnReadmission != nil {
		for _, id := range readmitted {
			if err := g.Poll(); err != nil {
				return
			}
			c.cfg.OnReadmission(id)
		}
	}
}

// probeOne checks one node's liveness and readiness. Both endpoints
// must answer 200 inside ProbeTimeout; anything else — transport
// error, non-200, hung connection — counts as one probe failure.
func (c *Coordinator) probeOne(ctx context.Context, base string) error {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
	defer cancel()
	for _, path := range [...]string{"/healthz", "/readyz"} {
		req, err := http.NewRequestWithContext(pctx, http.MethodGet, base+path, nil)
		if err != nil {
			return fmt.Errorf("cluster: probe %s%s: %w", base, path, err)
		}
		resp, err := c.client.Do(req)
		if err != nil {
			return fmt.Errorf("cluster: probe %s%s: %w", base, path, err)
		}
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("cluster: probe %s%s: status %d", base, path, resp.StatusCode)
		}
	}
	return nil
}

// KillForTest immediately marks a node unhealthy and rebuilds the
// ring, bypassing the probe cycle — the chaos harness uses it to
// model an instantaneous ejection decision while the real prober is
// also running. It records the same ejection transition the prober
// would.
func (c *Coordinator) KillForTest(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.members[id]
	if m == nil || !m.healthy {
		return
	}
	m.healthy = false
	m.fails = c.cfg.FailThreshold
	m.lastErr = "killed by test harness"
	c.stats.Add(SeriesEjections, 1)
	c.ring = c.rebuildLocked(nil)
}
