package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"omini/internal/resilience"
	"omini/internal/serve"
	"omini/internal/sitegen"
)

// testNode is one cluster member backed by a real extraction server.
type testNode struct {
	id string
	ts *httptest.Server
}

// newTestCluster starts n member nodes (each a full serve.Server) and a
// pure-coordinator front (Self empty, its own local server) routing
// across them. The returned stats registry is shared by the coordinator
// and its local fallback server, the way cmd/ominiserve wires it.
func newTestCluster(t *testing.T, n int, tune func(*Config)) (*Coordinator, []*testNode, *resilience.Stats) {
	t.Helper()
	nodes := make([]*testNode, n)
	peers := make(map[string]string, n)
	for i := range nodes {
		id := fmt.Sprintf("n%d", i)
		ts := httptest.NewServer(serve.New(serve.Config{Stats: resilience.NewStats()}))
		t.Cleanup(ts.Close)
		nodes[i] = &testNode{id: id, ts: ts}
		peers[id] = ts.URL
	}
	stats := resilience.NewStats()
	cfg := Config{
		Peers:         peers,
		Local:         serve.New(serve.Config{Stats: stats}),
		Stats:         stats,
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		FailThreshold: 2,
		NodeAttempts:  2,
		RetryBase:     time.Millisecond,
		RetryMaxDelay: 4 * time.Millisecond,
	}
	if tune != nil {
		tune(&cfg)
	}
	return New(cfg), nodes, stats
}

// postPage POSTs a page through the coordinator and decodes the node
// attribution.
func postPage(t *testing.T, c *Coordinator, site, html string) (*http.Response, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/extract?site="+site, strings.NewReader(html))
	req.Header.Set("Content-Type", "text/html")
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, req)
	resp := rec.Result()
	t.Cleanup(func() { resp.Body.Close() })
	var payload map[string]any
	dec := json.NewDecoder(resp.Body)
	_ = dec.Decode(&payload)
	return resp, payload
}

// Routing is shard-sticky: the same site always lands on the same node,
// and the serving node is recorded in both the response header and the
// JSON payload.
func TestRouteStickyShards(t *testing.T) {
	c, _, stats := newTestCluster(t, 3, nil)
	page := sitegen.Canoe()

	servedBy := map[string]bool{}
	for i := 0; i < 5; i++ {
		resp, payload := postPage(t, c, page.Site, page.HTML)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		node := resp.Header.Get("X-Omini-Node")
		if node == "" {
			t.Fatal("response missing X-Omini-Node")
		}
		if payload["node"] != node {
			t.Fatalf("JSON node %v != header node %q", payload["node"], node)
		}
		servedBy[node] = true
	}
	if len(servedBy) != 1 {
		t.Errorf("one site served by %d nodes %v, want shard-sticky routing", len(servedBy), servedBy)
	}
	if got := stats.Get(SeriesProxied); got != 5 {
		t.Errorf("cluster.proxied = %d, want 5", got)
	}

	// Different sites spread across the ring.
	spread := map[string]bool{}
	for i := 0; i < 12; i++ {
		resp, _ := postPage(t, c, fmt.Sprintf("spread-%d.example", i), page.HTML)
		if resp.StatusCode == http.StatusOK {
			spread[resp.Header.Get("X-Omini-Node")] = true
		}
	}
	if len(spread) < 2 {
		t.Errorf("12 sites all landed on %d node(s); ring is not spreading shards", len(spread))
	}
}

// When a site's owner dies, the request fails over to the next node on
// the ring and still succeeds.
func TestRouteFailsOverWhenOwnerDies(t *testing.T) {
	c, nodes, stats := newTestCluster(t, 3, nil)
	page := sitegen.Canoe()

	resp, _ := postPage(t, c, page.Site, page.HTML)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline status %d", resp.StatusCode)
	}
	owner := resp.Header.Get("X-Omini-Node")

	for _, n := range nodes {
		if n.id == owner {
			n.ts.CloseClientConnections()
			n.ts.Close()
		}
	}

	resp, _ = postPage(t, c, page.Site, page.HTML)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-kill status %d, want failover success", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Omini-Node"); got == owner {
		t.Errorf("request still served by dead node %q", got)
	}
	if got := stats.Get(SeriesFailover); got == 0 {
		t.Error("cluster.failover = 0 after a dead-owner request")
	}
}

// With every peer down the coordinator degrades to local extraction:
// the request succeeds, the fallback is counted, and /metricsz (served
// by the shared registry) exposes the count.
func TestAllPeersDownFallsBackLocal(t *testing.T) {
	c, nodes, stats := newTestCluster(t, 2, nil)
	for _, n := range nodes {
		n.ts.CloseClientConnections()
		n.ts.Close()
	}
	page := sitegen.Canoe()
	resp, payload := postPage(t, c, page.Site, page.HTML)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 via local fallback", resp.StatusCode)
	}
	if objs, ok := payload["objects"].([]any); !ok || len(objs) == 0 {
		t.Errorf("fallback extraction returned no objects: %v", payload["objects"])
	}
	if got := stats.Get(SeriesFallbackLocal); got != 1 {
		t.Errorf("cluster.fallback_local = %d, want 1", got)
	}

	req := httptest.NewRequest(http.MethodGet, "/metricsz", nil)
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, req)
	if body := rec.Body.String(); !strings.Contains(body, "cluster_fallback_local 1") {
		t.Errorf("/metricsz missing cluster_fallback_local 1; got:\n%s", firstLines(body, 40))
	}
}

// firstLines truncates s for readable test failures.
func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}

// The error matrix a client can distinguish: 429 (downstream shed,
// Retry-After preserved), 503 (all peers down AND the local fallback is
// itself over limit), 504 (routing budget exhausted). Each carries the
// structured JSON error payload.
func TestErrorMatrix(t *testing.T) {
	page := sitegen.Canoe()

	t.Run("shed propagates 429 with Retry-After", func(t *testing.T) {
		shedding := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = w.Write([]byte(`{"error":"server at capacity","status":429}`))
		}))
		defer shedding.Close()
		stats := resilience.NewStats()
		c := New(Config{
			Peers: map[string]string{"shed": shedding.URL},
			Local: serve.New(serve.Config{Stats: resilience.NewStats()}),
			Stats: stats,
		})
		resp, payload := postPage(t, c, page.Site, page.HTML)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429", resp.StatusCode)
		}
		if got := resp.Header.Get("Retry-After"); got != "7" {
			t.Errorf("Retry-After = %q, want preserved %q", got, "7")
		}
		if got := stats.Get(SeriesShedPropagated); got != 1 {
			t.Errorf("cluster.shed_propagated = %d, want 1", got)
		}
		if payload["status"] != float64(http.StatusTooManyRequests) {
			t.Errorf("error payload status = %v, want 429", payload["status"])
		}
	})

	t.Run("all peers down and local over limit is 503", func(t *testing.T) {
		dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
		dead.CloseClientConnections()
		dead.Close()
		overloaded := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = w.Write([]byte(`{"error":"server at capacity","status":429}`))
		})
		stats := resilience.NewStats()
		c := New(Config{
			Peers:         map[string]string{"gone": dead.URL},
			Local:         overloaded,
			Stats:         stats,
			NodeAttempts:  1,
			RetryBase:     time.Millisecond,
			RetryMaxDelay: time.Millisecond,
		})
		resp, _ := postPage(t, c, page.Site, page.HTML)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503 (cluster saturated)", resp.StatusCode)
		}
		if got := resp.Header.Get("Retry-After"); got != "3" {
			t.Errorf("Retry-After = %q, want limiter's %q preserved", got, "3")
		}
		if got := stats.Get(SeriesFallbackLocal); got != 1 {
			t.Errorf("cluster.fallback_local = %d, want 1", got)
		}
	})

	t.Run("routing budget exhaustion is 504", func(t *testing.T) {
		slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			select {
			case <-r.Context().Done():
			case <-time.After(2 * time.Second):
			}
			w.WriteHeader(http.StatusOK)
		}))
		defer slow.Close()
		stats := resilience.NewStats()
		c := New(Config{
			Peers:        map[string]string{"slow": slow.URL},
			Local:        serve.New(serve.Config{Stats: resilience.NewStats()}),
			Stats:        stats,
			Budget:       80 * time.Millisecond,
			NodeAttempts: 1,
		})
		resp, _ := postPage(t, c, page.Site, page.HTML)
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("status %d, want 504", resp.StatusCode)
		}
		if got := stats.Get(SeriesDeadline); got != 1 {
			t.Errorf("cluster.deadline = %d, want 1", got)
		}
	})
}

// The health checker ejects a node whose probes fail FailThreshold
// times and re-admits it on the first success; both transitions are
// counted and visible on /clusterz.
func TestHealthEjectionAndReadmission(t *testing.T) {
	var down atomic.Bool
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer flaky.Close()
	steady := httptest.NewServer(serve.New(serve.Config{Stats: resilience.NewStats()}))
	defer steady.Close()

	stats := resilience.NewStats()
	c := New(Config{
		Peers:         map[string]string{"flaky": flaky.URL, "steady": steady.URL},
		Local:         serve.New(serve.Config{Stats: resilience.NewStats()}),
		Stats:         stats,
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		FailThreshold: 2,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = c.Run(ctx) }()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}

	down.Store(true)
	waitFor("ejection", func() bool { return stats.Get(SeriesEjections) >= 1 })
	if healthy := clusterzHealthy(t, c); healthy["flaky"] {
		t.Error("/clusterz still reports flaky healthy after ejection")
	}

	down.Store(false)
	waitFor("re-admission", func() bool { return stats.Get(SeriesReadmissions) >= 1 })
	waitFor("probe successes", func() bool { return clusterzHealthy(t, c)["flaky"] })
	if got := stats.Get(SeriesProbeFailures); got == 0 {
		t.Error("cluster.probe_failures = 0 despite an outage")
	}
}

// clusterzHealthy decodes /clusterz into a node -> healthy map.
func clusterzHealthy(t *testing.T, c *Coordinator) map[string]bool {
	t.Helper()
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/clusterz", nil))
	var out struct {
		Nodes []struct {
			ID      string `json:"id"`
			Healthy bool   `json:"healthy"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad /clusterz JSON: %v", err)
	}
	healthy := make(map[string]bool, len(out.Nodes))
	for _, n := range out.Nodes {
		healthy[n.ID] = n.Healthy
	}
	return healthy
}

// A forwarded request is always served locally — no proxy chains, no
// loops in symmetric deployments.
func TestForwardedRequestsServeLocally(t *testing.T) {
	c, _, stats := newTestCluster(t, 3, nil)
	page := sitegen.Canoe()
	req := httptest.NewRequest(http.MethodPost, "/extract?site="+page.Site, strings.NewReader(page.HTML))
	req.Header.Set(forwardedHeader, "n9")
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("forwarded request status %d", rec.Code)
	}
	if got := stats.Get(SeriesProxied); got != 0 {
		t.Errorf("forwarded request was proxied (%d hops); must serve locally", got)
	}
}

// TestOnReadmissionCallback: a node coming back from ejection fires the
// readmission hook — once per transition, with the node's id, after the
// ring already includes it again (so a rule-sync handler sees the new
// topology).
func TestOnReadmissionCallback(t *testing.T) {
	var down atomic.Bool
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer flaky.Close()

	var mu sync.Mutex
	var fired []string
	stats := resilience.NewStats()
	var c *Coordinator
	c = New(Config{
		Peers:         map[string]string{"flaky": flaky.URL},
		Local:         serve.New(serve.Config{Stats: resilience.NewStats()}),
		Stats:         stats,
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
		FailThreshold: 2,
		OnReadmission: func(id string) {
			mu.Lock()
			defer mu.Unlock()
			// The callback contract: the ring rebuild precedes the hook.
			if !clusterzHealthy(t, c)[id] {
				t.Errorf("OnReadmission(%s) fired before the node was healthy in /clusterz", id)
			}
			fired = append(fired, id)
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = c.Run(ctx) }()

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", what)
	}

	down.Store(true)
	waitFor("ejection", func() bool { return stats.Get(SeriesEjections) >= 1 })
	down.Store(false)
	waitFor("readmission callback", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(fired) >= 1
	})
	cancel()

	mu.Lock()
	defer mu.Unlock()
	if fired[0] != "flaky" {
		t.Fatalf("OnReadmission got %q, want flaky", fired[0])
	}
	if len(fired) != int(stats.Get(SeriesReadmissions)) {
		t.Fatalf("callback fired %d times for %d readmissions",
			len(fired), stats.Get(SeriesReadmissions))
	}
}
