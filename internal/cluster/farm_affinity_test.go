package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"omini/internal/farm"
	"omini/internal/resilience"
	"omini/internal/serve"
	"omini/internal/sitegen"
)

// TestFarmShardAffinity is the scale-out claim behind the wrapper
// farm: consistent-hash routing pins each site to one node, so each
// node's farm learns only its own hosts — exactly one discovery per
// site cluster-wide — and every repeat request is a farm hit on the
// node that learned it. Without affinity, each node would relearn
// every site it happened to receive.
func TestFarmShardAffinity(t *testing.T) {
	const nNodes, nSites, nRounds = 3, 8, 3

	registries := make([]*resilience.Stats, nNodes)
	peers := make(map[string]string, nNodes)
	for i := range registries {
		registries[i] = resilience.NewStats()
		ts := httptest.NewServer(serve.New(serve.Config{Stats: registries[i]}))
		t.Cleanup(ts.Close)
		peers[fmt.Sprintf("n%d", i)] = ts.URL
	}
	coordStats := resilience.NewStats()
	c := New(Config{
		Peers:         peers,
		Local:         serve.New(serve.Config{Stats: coordStats}),
		Stats:         coordStats,
		ProbeInterval: 20 * time.Millisecond,
		NodeAttempts:  2,
		RetryBase:     time.Millisecond,
		RetryMaxDelay: 4 * time.Millisecond,
	})

	layouts := []string{"ul-record", "div-card", "row-table", "dl-record"}
	pages := make([]sitegen.Page, nSites)
	for i := range pages {
		pages[i] = sitegen.SiteSpec{
			Name:       fmt.Sprintf("affinity-%d.example", i),
			Domain:     sitegen.DomainBooks,
			LayoutName: layouts[i%len(layouts)],
			MinItems:   6,
			MaxItems:   10,
		}.Page(0)
	}

	for round := 0; round < nRounds; round++ {
		for _, page := range pages {
			resp, _ := postPage(t, c, page.Site, page.HTML)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("round %d site %s: status %d", round, page.Site, resp.StatusCode)
			}
		}
	}

	var learns, hits int64
	for i, reg := range registries {
		l, h := reg.Get(farm.SeriesLearns), reg.Get(farm.SeriesHits)
		t.Logf("node n%d: farm.learns=%d farm.hits=%d", i, l, h)
		learns += l
		hits += h
	}
	if learns != nSites {
		t.Fatalf("cluster-wide farm.learns = %d, want exactly %d (one discovery per site)", learns, nSites)
	}
	if want := int64(nSites * (nRounds - 1)); hits != want {
		t.Fatalf("cluster-wide farm.hits = %d, want %d (every repeat request served fast-path)", hits, want)
	}
	if l := coordStats.Get(farm.SeriesLearns); l != 0 {
		t.Fatalf("coordinator's local farm learned %d rules; routed traffic must not touch it", l)
	}
}
