package cluster

import "omini/internal/obs"

// Registry series emitted by this package. One constant per series —
// the obsnames analyzer enforces that emission sites use these and
// that registerMetrics pre-registers every one of them, so /metricsz
// exposes the whole cluster surface from boot.
const (
	// SeriesRequests counts requests that entered the router (a site
	// parameter was present and a ring exists).
	SeriesRequests = "cluster.requests"
	// SeriesLocal counts routed requests served by this node's own
	// shard (owner == self, no network hop).
	SeriesLocal = "cluster.local"
	// SeriesProxied counts routed requests served by a peer.
	SeriesProxied = "cluster.proxied"
	// SeriesFailover counts hop switches: a candidate node failed (or
	// its breaker was open) and the router moved to the next node on
	// the ring.
	SeriesFailover = "cluster.failover"
	// SeriesFallbackLocal counts degraded requests: every peer for the
	// shard was down, so the coordinator extracted locally instead of
	// erroring.
	SeriesFallbackLocal = "cluster.fallback_local"
	// SeriesShedPropagated counts downstream 429/503 load-shed
	// responses relayed to the client (with Retry-After preserved)
	// instead of being retried blindly.
	SeriesShedPropagated = "cluster.shed_propagated"
	// SeriesDeadline counts requests that ran out of routing budget
	// (mapped to 504).
	SeriesDeadline = "cluster.deadline"

	// SeriesEjections / SeriesReadmissions count health-checker
	// membership transitions; SeriesProbes / SeriesProbeFailures count
	// the checks themselves.
	SeriesEjections     = "cluster.ejections"
	SeriesReadmissions  = "cluster.readmissions"
	SeriesProbes        = "cluster.probes"
	SeriesProbeFailures = "cluster.probe_failures"

	// SeriesBatchPages counts pages completed by distributed batches;
	// SeriesRedispatch counts pages served by a node other than their
	// ring owner (the owner died or was ejected mid-batch).
	SeriesBatchPages  = "cluster.batch_pages"
	SeriesRedispatch  = "cluster.redispatch"
	SeriesBatchErrors = "cluster.batch_errors"

	// gaugeRingNodes is the number of healthy (admitted) nodes on the
	// ring; gaugePeers is the configured cluster size.
	gaugeRingNodes = "cluster.ring_nodes"
	gaugePeers     = "cluster.peers"

	// seriesHopSeconds is the latency histogram of proxy hops across
	// all peers; per-node p50/p99 live on /clusterz.
	seriesHopSeconds = "cluster.hop_seconds"
)

// registerMetrics pre-touches every series this package emits, so a
// scrape of a fresh process already shows the full cluster surface at
// zero. The obsnames analyzer harvests this function as the boot
// pre-registration set.
func (c *Coordinator) registerMetrics() {
	for _, name := range []string{
		SeriesRequests, SeriesLocal, SeriesProxied, SeriesFailover,
		SeriesFallbackLocal, SeriesShedPropagated, SeriesDeadline,
		SeriesEjections, SeriesReadmissions, SeriesProbes, SeriesProbeFailures,
		SeriesBatchPages, SeriesRedispatch, SeriesBatchErrors,
	} {
		c.stats.Counter(name)
	}
	c.stats.Histogram(seriesHopSeconds)
	// The routing-path spans, pre-registered like serve's phases so the
	// route/hop histograms exist from boot.
	c.stats.Histogram(obs.PhaseSeries("route"))
	c.stats.Histogram(obs.PhaseSeries("hop"))
	c.stats.RegisterGaugeFunc(gaugeRingNodes, func() float64 {
		c.mu.RLock()
		defer c.mu.RUnlock()
		return float64(c.ring.size())
	})
	c.stats.RegisterGaugeFunc(gaugePeers, func() float64 {
		c.mu.RLock()
		defer c.mu.RUnlock()
		return float64(len(c.members))
	})
}
