package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	rpprof "runtime/pprof"
	"strings"
	"time"

	"omini/internal/govern"
	"omini/internal/obs"
	"omini/internal/resilience"
)

// errShed marks a downstream load-shed response (429/503 with an
// optional Retry-After): the node is alive but refusing work, so the
// router moves on without retrying it and without charging its
// breaker.
var errShed = errors.New("cluster: downstream shed")

// hopResult is a relayable response captured from one proxy hop.
type hopResult struct {
	status int
	header http.Header
	body   []byte
}

// shedResult remembers the best load-shed response seen during the
// walk, so exhaustion can propagate it (status and Retry-After
// preserved) instead of inventing an error.
type shedResult struct {
	status     int
	retryAfter string
}

// route is the cluster routing path for one extraction request: hash
// the site to its owner, walk the failover chain with per-hop budgets
// and circuit breakers, degrade to local extraction when the chain is
// exhausted without a shed to propagate.
//
// It is also the cluster's tracing root: the coordinator makes the one
// sampling decision for the whole request, records "route" and "hop"
// spans, and forwards the decision (and span context) in the
// X-Omini-Trace header so the serving node's spans parent into this
// trace instead of starting their own.
func (c *Coordinator) route(w http.ResponseWriter, r *http.Request) {
	c.stats.Add(SeriesRequests, 1)
	site := r.URL.Query().Get("site")

	body, err := io.ReadAll(io.LimitReader(r.Body, c.cfg.MaxBodyBytes+1))
	if err != nil {
		writeError(r.Context(), w, http.StatusBadRequest, fmt.Sprintf("cluster: read body: %v", err))
		return
	}
	if int64(len(body)) > c.cfg.MaxBodyBytes {
		writeError(r.Context(), w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("cluster: body exceeds %d bytes", c.cfg.MaxBodyBytes))
		return
	}

	// The routing budget is the cluster analogue of the govern page
	// deadline: the whole candidate walk happens inside it, and each
	// hop gets a slice so one slow node cannot eat the request.
	bctx, cancel := context.WithTimeout(r.Context(), c.cfg.Budget)
	defer cancel()
	// Route/hop spans land in this coordinator's registry even when the
	// inbound context carries none.
	bctx = obs.WithRegistry(bctx, c.stats)

	// One sampling decision per routed request, made here: an inbound
	// header's decision is adopted, otherwise this coordinator samples.
	// Either way the decision travels in the forwarded header, so the
	// serving node never samples independently (no partial traces).
	sc, scErr := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader))
	var sampled bool
	if scErr == nil && sc.Valid() {
		sampled = sc.Sampled
	} else {
		sampled = forceTrace(r) || c.sampler.Sample()
	}
	var rec *obs.TraceRecorder
	var declined string
	if sampled {
		bctx, rec = obs.StartTrace(bctx, sc, false)
	} else {
		declined = obs.SpanContext{TraceID: obs.NewTraceID()}.Header()
	}
	rctx, root := obs.StartSpan(bctx, "route")
	var sw http.ResponseWriter = w
	if rec != nil {
		st := &statusRecorder{ResponseWriter: w}
		sw = st
		w.Header().Set(obs.TraceHeader, root.Context().Header())
		defer func() {
			root.End()
			status := st.code
			if status == 0 {
				status = http.StatusOK
			}
			c.recordTrace(rec, site, status, root.Duration())
		}()
	} else {
		defer root.End()
	}
	// The header forwarded when this node serves the request itself:
	// the route span's context when traced, the declined decision
	// otherwise.
	localTH := declined
	if hsc := obs.SpanContextFrom(rctx); hsc.Valid() {
		localTH = hsc.Header()
	}

	deadline, _ := bctx.Deadline()
	g := govern.NewGuard(bctx, govern.Unlimited())

	candidates, err := c.candidates(g, site)
	if err != nil {
		c.stats.Add(SeriesDeadline, 1)
		writeError(rctx, sw, http.StatusGatewayTimeout, "cluster: routing budget exhausted")
		return
	}

	var shed *shedResult
	for i, id := range candidates {
		if err := g.Check(); err != nil {
			break
		}
		if id == c.self {
			c.stats.Add(SeriesLocal, 1)
			c.serveLocal(rctx, sw, r, body, localTH)
			return
		}
		url, m := c.memberByID(id)
		if m == nil {
			continue
		}
		br := c.breakers.For(id)
		if !br.Allow() {
			c.stats.Add(SeriesFailover, 1)
			continue
		}
		hopBudget := time.Until(deadline) / time.Duration(len(candidates)-i)
		res, hopShed, err := c.hopSpanned(rctx, hopBudget, url, id, m, declined, r, body)
		switch {
		case err == nil:
			br.Success()
			c.relay(sw, r, res, id, m)
			return
		case errors.Is(err, errShed):
			// Alive but refusing work: remember the first shed (the
			// owner's answer is the most authoritative) and move on
			// without penalizing the breaker.
			br.Success()
			if shed == nil {
				shed = hopShed
			}
		case bctx.Err() != nil:
			// Budget gone, not node broken: don't charge the breaker.
		default:
			br.Failure()
			c.stats.Add(SeriesFailover, 1)
			c.log.Warn("cluster hop failed", "node", id, "site", site, "err", err.Error())
		}
		if bctx.Err() != nil {
			break
		}
	}

	switch {
	case bctx.Err() != nil:
		c.stats.Add(SeriesDeadline, 1)
		writeError(rctx, sw, http.StatusGatewayTimeout, "cluster: routing budget exhausted")
	case shed != nil:
		c.stats.Add(SeriesShedPropagated, 1)
		if shed.retryAfter != "" {
			sw.Header().Set("Retry-After", shed.retryAfter)
		}
		writeError(rctx, sw, shed.status, "cluster: downstream shedding load")
	default:
		c.fallbackLocal(rctx, sw, r, body, localTH)
	}
}

// forceTrace reports whether the request explicitly opted into tracing
// (the same ?trace= values serve honors for inline traces).
func forceTrace(r *http.Request) bool {
	switch r.URL.Query().Get("trace") {
	case "1", "true", "yes":
		return true
	}
	return false
}

// statusRecorder captures the final status written to a routed
// response, for the trace summary.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (s *statusRecorder) WriteHeader(code int) {
	if s.code == 0 {
		s.code = code
	}
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(p []byte) (int, error) {
	if s.code == 0 {
		s.code = http.StatusOK
	}
	return s.ResponseWriter.Write(p)
}

// recordTrace folds the coordinator's routing half of a traced request
// into the trace sink; on self-served requests the sink merges it with
// the serve half recorded under the same trace ID.
func (c *Coordinator) recordTrace(rec *obs.TraceRecorder, site string, status int, dur time.Duration) {
	t := &obs.TraceData{
		TraceSummary: obs.TraceSummary{
			TraceID:    rec.TraceID().String(),
			Node:       c.selfOrProxy(),
			Op:         "route",
			Site:       site,
			Status:     status,
			StartedAt:  rec.Start(),
			DurationNS: dur.Nanoseconds(),
		},
		Attrs:   rec.Attrs(),
		Charges: rec.Charges(),
		Spans:   rec.Spans(),
	}
	t.SpanCount = len(t.Spans)
	c.traces.Record(t)
}

// candidates returns the site's failover chain: its ring owner first,
// then the remaining healthy nodes in ring order.
func (c *Coordinator) candidates(g *govern.Guard, site string) ([]string, error) {
	c.mu.RLock()
	ring := c.ring
	c.mu.RUnlock()
	return ring.successors(g, site, ring.size())
}

// memberByID resolves a node ID to its URL and member record.
func (c *Coordinator) memberByID(id string) (string, *member) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	m := c.members[id]
	if m == nil {
		return "", nil
	}
	return m.url, m
}

// hopSpanned runs one proxy hop under a "hop" span and pprof hop
// label. The forwarded X-Omini-Trace header carries the hop span's
// context on traced requests — the serving node's handler span parents
// to it — and the coordinator's declined decision otherwise. A
// successful hop records its latency per-node and cluster-wide, with a
// trace exemplar when traced.
func (c *Coordinator) hopSpanned(ctx context.Context, budget time.Duration, url, id string, m *member, declined string, r *http.Request, body []byte) (*hopResult, *shedResult, error) {
	hctx, sp := obs.StartSpan(ctx, "hop")
	th := declined
	if hsc := sp.Context(); hsc.Valid() {
		th = hsc.Header()
	}
	var res *hopResult
	var shed *shedResult
	var err error
	rpprof.Do(hctx, rpprof.Labels("hop", id), func(pctx context.Context) {
		res, shed, err = c.hop(pctx, budget, url, th, r, body)
	})
	sp.End()
	if err == nil {
		secs := sp.Duration().Seconds()
		m.lat.Observe(secs)
		c.stats.ObserveExemplar(seriesHopSeconds, secs, obs.TraceIDStringFrom(ctx))
	}
	return res, shed, err
}

// hop forwards the request to one node, retrying transient failures
// with capped backoff+jitter inside the hop's slice of the routing
// budget. Load sheds and client errors are permanent for the retry
// policy: more attempts cannot change them. traceHeader replaces the
// inbound X-Omini-Trace header on the forwarded request — the
// coordinator's trace context, not the client's, is what the serving
// node must continue.
func (c *Coordinator) hop(ctx context.Context, budget time.Duration, url, traceHeader string, r *http.Request, body []byte) (*hopResult, *shedResult, error) {
	hctx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	var res *hopResult
	var shed *shedResult
	err := c.retry.Do(hctx, func(ctx context.Context) error {
		req, err := http.NewRequestWithContext(ctx, r.Method, url+r.URL.RequestURI(), bytes.NewReader(body))
		if err != nil {
			return resilience.Permanent(fmt.Errorf("cluster: build hop request: %w", err))
		}
		copyHeader(req.Header, r.Header)
		req.Header.Set(forwardedHeader, c.selfOrProxy())
		setTraceHeader(req.Header, traceHeader)
		resp, err := c.client.Do(req)
		if err != nil {
			return fmt.Errorf("cluster: hop: %w", err)
		}
		defer resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			shed = &shedResult{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
			return resilience.Permanent(fmt.Errorf("%w: status %d", errShed, resp.StatusCode))
		case resp.StatusCode >= 500:
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			return fmt.Errorf("cluster: hop: status %d", resp.StatusCode)
		}
		b, err := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxBodyBytes+1))
		if err != nil {
			return fmt.Errorf("cluster: hop: read response: %w", err)
		}
		res = &hopResult{status: resp.StatusCode, header: resp.Header, body: b}
		return nil
	})
	return res, shed, err
}

// relay writes a successful hop response to the client, recording the
// serving node in the X-Omini-Node header and — when the payload is a
// JSON object — in a "node" field, so decision traces downstream of
// the coordinator can attribute the extraction.
func (c *Coordinator) relay(w http.ResponseWriter, r *http.Request, res *hopResult, id string, m *member) {
	c.stats.Add(SeriesProxied, 1)
	m.served.Add(1)
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if tr := res.header.Get(obs.TraceHeader); tr != "" {
		w.Header().Set(obs.TraceHeader, tr)
	}
	w.Header().Set(nodeHeader, id)
	body := res.body
	if res.status >= 200 && res.status < 300 {
		if tagged, ok := injectNode(body, id); ok {
			body = tagged
		}
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(body)
	c.log.Debug("cluster routed", "node", id, "site", r.URL.Query().Get("site"), "status", res.status)
}

// injectNode adds "node": id to a JSON object payload; non-object
// payloads (arrays, invalid JSON) are passed through untouched.
func injectNode(body []byte, id string) ([]byte, bool) {
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) == 0 || trimmed[0] != '{' {
		return nil, false
	}
	var obj map[string]any
	if err := json.Unmarshal(body, &obj); err != nil {
		return nil, false
	}
	obj["node"] = id
	out, err := json.MarshalIndent(obj, "", "  ")
	if err != nil {
		return nil, false
	}
	return out, true
}

// setTraceHeader replaces h's X-Omini-Trace with the coordinator's
// value (span context or declined decision); an empty value clears the
// inbound header so a downstream node never continues the client's raw
// context behind the coordinator's back.
func setTraceHeader(h http.Header, value string) {
	if value != "" {
		h.Set(obs.TraceHeader, value)
	} else {
		h.Del(obs.TraceHeader)
	}
}

// serveLocal serves the request from this node's own shard, replaying
// the buffered body into the local handler. The forwarded trace header
// parents the local handler's spans into the route span. Callers count
// the routing outcome (SeriesLocal) themselves so series names stay
// constant at their emission sites.
func (c *Coordinator) serveLocal(ctx context.Context, w http.ResponseWriter, r *http.Request, body []byte, traceHeader string) {
	if _, m := c.memberByID(c.self); m != nil {
		m.served.Add(1)
	}
	r2 := r.Clone(ctx)
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	setTraceHeader(r2.Header, traceHeader)
	node := c.self
	if node == "" {
		node = "local"
	}
	buf := &bufferedResponse{header: make(http.Header), status: http.StatusOK}
	c.local.ServeHTTP(buf, r2)
	copyHeader(w.Header(), buf.header)
	w.Header().Set(nodeHeader, node)
	out := buf.body.Bytes()
	if buf.status >= 200 && buf.status < 300 {
		if injected, ok := injectNode(out, node); ok {
			out = injected
		}
	}
	w.WriteHeader(buf.status)
	_, _ = w.Write(out)
}

// fallbackLocal is the bottom of the degradation ladder: every peer
// for the shard is down, so the coordinator extracts locally rather
// than failing the request. The local response is buffered so a local
// load shed (429) — meaning the whole cluster is saturated — can be
// remapped to 503 with the limiter's Retry-After preserved; anything
// else relays verbatim.
func (c *Coordinator) fallbackLocal(ctx context.Context, w http.ResponseWriter, r *http.Request, body []byte, traceHeader string) {
	c.stats.Add(SeriesFallbackLocal, 1)
	c.log.Warn("cluster degraded to local extraction", "site", r.URL.Query().Get("site"))
	r2 := r.Clone(ctx)
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	setTraceHeader(r2.Header, traceHeader)
	buf := &bufferedResponse{header: make(http.Header), status: http.StatusOK}
	c.local.ServeHTTP(buf, r2)
	status := buf.status
	if status == http.StatusTooManyRequests {
		status = http.StatusServiceUnavailable
	}
	copyHeader(w.Header(), buf.header)
	node := c.selfOrProxy() + " (fallback)"
	w.Header().Set(nodeHeader, node)
	out := buf.body.Bytes()
	if status >= 200 && status < 300 {
		if injected, ok := injectNode(out, node); ok {
			out = injected
		}
	}
	w.WriteHeader(status)
	_, _ = w.Write(out)
}

// bufferedResponse captures a handler's response for inspection before
// relaying it.
type bufferedResponse struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(status int) { b.status = status }

func (b *bufferedResponse) Write(p []byte) (int, error) { return b.body.Write(p) }

// copyHeader copies src into dst, skipping hop-local headers.
func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		if strings.EqualFold(k, "Connection") || strings.EqualFold(k, "Content-Length") {
			continue
		}
		for _, v := range vs {
			dst[k] = append(dst[k], v)
		}
	}
}

// selfOrProxy names this coordinator in the forwarded header.
func (c *Coordinator) selfOrProxy() string {
	if c.self != "" {
		return c.self
	}
	return "proxy"
}
