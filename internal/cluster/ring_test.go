package cluster

import (
	"fmt"
	"testing"
)

func TestRingOwnerIsDeterministic(t *testing.T) {
	nodes := []string{"a", "b", "c"}
	r1, err := buildRing(nil, nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := buildRing(nil, []string{"c", "a", "b"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("site-%d.example", i)
		o1, err := r1.owner(nil, key)
		if err != nil {
			t.Fatal(err)
		}
		o2, err := r2.owner(nil, key)
		if err != nil {
			t.Fatal(err)
		}
		if o1 != o2 {
			t.Fatalf("key %q: owner differs across build orders: %q vs %q", key, o1, o2)
		}
	}
}

func TestRingBalancesKeys(t *testing.T) {
	r, err := buildRing(nil, []string{"a", "b", "c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		o, err := r.owner(nil, fmt.Sprintf("host-%d.example.com", i))
		if err != nil {
			t.Fatal(err)
		}
		counts[o]++
	}
	for node, n := range counts {
		if share := float64(n) / keys; share < 0.10 || share > 0.60 {
			t.Errorf("node %s owns %.1f%% of keys; 64 vnodes should keep shares in [10%%, 60%%]", node, share*100)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d nodes own keys, want 3", len(counts))
	}
}

func TestRingSuccessorsDistinctAndOwnerFirst(t *testing.T) {
	r, err := buildRing(nil, []string{"a", "b", "c", "d"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("k%d", i)
		chain, err := r.successors(nil, key, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(chain) != 4 {
			t.Fatalf("key %q: chain = %v, want 4 distinct nodes", key, chain)
		}
		seen := map[string]bool{}
		for _, n := range chain {
			if seen[n] {
				t.Fatalf("key %q: duplicate node %q in chain %v", key, n, chain)
			}
			seen[n] = true
		}
		owner, err := r.owner(nil, key)
		if err != nil {
			t.Fatal(err)
		}
		if chain[0] != owner {
			t.Fatalf("key %q: chain starts at %q, owner is %q", key, chain[0], owner)
		}
	}
}

// Removing one node must only remap the keys that node owned — the
// consistent-hashing property the shard-affinity design depends on.
func TestRingRemovalRemapsOnlyTheLostShard(t *testing.T) {
	full, err := buildRing(nil, []string{"a", "b", "c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := buildRing(nil, []string{"a", "b"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("host-%d.example.com", i)
		before, err := full.owner(nil, key)
		if err != nil {
			t.Fatal(err)
		}
		after, err := reduced.owner(nil, key)
		if err != nil {
			t.Fatal(err)
		}
		if before == "c" {
			if after == "c" {
				t.Fatalf("key %q still owned by removed node", key)
			}
			continue
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the removed node changed owner; consistent hashing should move none", moved)
	}
}

func TestRingEmptyAndNilAreSafe(t *testing.T) {
	var r *hashRing
	if r.size() != 0 {
		t.Error("nil ring size != 0")
	}
	if o, err := r.owner(nil, "x"); err != nil || o != "" {
		t.Errorf("nil ring owner = %q, %v", o, err)
	}
	empty, err := buildRing(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if o, err := empty.owner(nil, "x"); err != nil || o != "" {
		t.Errorf("empty ring owner = %q, %v", o, err)
	}
}
