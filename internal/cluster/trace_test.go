package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"omini/internal/obs"
	"omini/internal/resilience"
	"omini/internal/serve"
	"omini/internal/sitegen"
)

// TestClusterTracePropagation proves the tentpole end to end: one trace
// ID minted at the coordinator spans the cluster hop — the coordinator's
// sink holds the route/hop half, the owner's sink holds the handler/farm
// half under the same ID, and the owner's handler span parents to the
// coordinator's hop span across the process boundary.
func TestClusterTracePropagation(t *testing.T) {
	const n = 3
	servers := make(map[string]*serve.Server, n)
	peers := make(map[string]string, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("n%d", i)
		srv := serve.New(serve.Config{Stats: resilience.NewStats()})
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		servers[id] = srv
		peers[id] = ts.URL
	}
	coordTraces := obs.NewTraceSink(0)
	c := New(Config{
		Peers:         peers,
		Local:         serve.New(serve.Config{Stats: resilience.NewStats()}),
		Stats:         resilience.NewStats(),
		Traces:        coordTraces,
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  200 * time.Millisecond,
	})
	page := sitegen.Canoe()

	req := httptest.NewRequest(http.MethodPost, "/extract?site="+page.Site, strings.NewReader(page.HTML))
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, req)
	resp := rec.Result()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	sc, err := obs.ParseTraceHeader(resp.Header.Get(obs.TraceHeader))
	if err != nil || !sc.Valid() {
		t.Fatalf("bad response trace header %q: %v", resp.Header.Get(obs.TraceHeader), err)
	}
	tid := sc.TraceID.String()
	owner := resp.Header.Get("X-Omini-Node")
	ownerSrv := servers[owner]
	if ownerSrv == nil {
		t.Fatalf("unknown serving node %q", owner)
	}

	// The coordinator half: a route root and a hop child.
	coordTD, ok := coordTraces.Get(tid)
	if !ok {
		t.Fatalf("coordinator sink has no trace %s", tid)
	}
	if coordTD.Op != "route" || coordTD.Site != page.Site || coordTD.Status != http.StatusOK {
		t.Errorf("coordinator summary = %+v", coordTD.TraceSummary)
	}
	var route, hop obs.PhaseSample
	for _, s := range coordTD.Spans {
		switch s.Name {
		case "route":
			route = s
		case "hop":
			hop = s
		}
	}
	if route.SpanID == "" || hop.SpanID == "" {
		t.Fatalf("coordinator spans incomplete: %+v", coordTD.Spans)
	}
	if route.ParentSpanID != "" {
		t.Errorf("route root has parent %q, want none", route.ParentSpanID)
	}
	if hop.ParentSpanID != route.SpanID {
		t.Errorf("hop parent = %q, want route %q", hop.ParentSpanID, route.SpanID)
	}

	// The owner half: same trace ID, handler span parented to the
	// coordinator's hop span — the cross-node edge of the span tree.
	ownerTD, ok := ownerSrv.Traces().Get(tid)
	if !ok {
		t.Fatalf("owner %s sink has no trace %s", owner, tid)
	}
	var handler obs.PhaseSample
	for _, s := range ownerTD.Spans {
		if s.Name == "handler" {
			handler = s
		}
	}
	if handler.SpanID == "" {
		t.Fatalf("owner trace has no handler span: %+v", ownerTD.Spans)
	}
	if handler.ParentSpanID != hop.SpanID {
		t.Errorf("owner handler parent = %q, want coordinator hop %q", handler.ParentSpanID, hop.SpanID)
	}
	if ownerTD.Path == "" {
		t.Error("owner trace lacks the farm path attribute")
	}

	// No other node recorded anything for this trace.
	for id, srv := range servers {
		if id == owner {
			continue
		}
		if _, ok := srv.Traces().Get(tid); ok {
			t.Errorf("non-owner %s recorded trace %s", id, tid)
		}
	}
}

// TestCoordinatorDeclineSuppressesOwnerSampling pins the one-decision
// policy: when the coordinator declines to sample, the forwarded header
// carries that decision and the owner — whose own sampler would record
// everything — must not record a trace.
func TestCoordinatorDeclineSuppressesOwnerSampling(t *testing.T) {
	srv := serve.New(serve.Config{Stats: resilience.NewStats()}) // samples all by default
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c := New(Config{
		Peers:           map[string]string{"n0": ts.URL},
		Local:           serve.New(serve.Config{Stats: resilience.NewStats()}),
		Stats:           resilience.NewStats(),
		TraceSampleRate: -1,
		ProbeInterval:   20 * time.Millisecond,
		ProbeTimeout:    200 * time.Millisecond,
	})
	page := sitegen.Canoe()

	req := httptest.NewRequest(http.MethodPost, "/extract?site="+page.Site, strings.NewReader(page.HTML))
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, req)
	resp := rec.Result()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if n := srv.Traces().Len(); n != 0 {
		t.Errorf("owner recorded %d traces despite the coordinator's declined decision", n)
	}

	// ?trace=1 flips the coordinator's decision and the trace flows again.
	req2 := httptest.NewRequest(http.MethodPost, "/extract?trace=1&site="+page.Site, strings.NewReader(page.HTML))
	rec2 := httptest.NewRecorder()
	c.ServeHTTP(rec2, req2)
	resp2 := rec2.Result()
	defer resp2.Body.Close()
	sc, err := obs.ParseTraceHeader(resp2.Header.Get(obs.TraceHeader))
	if err != nil || !sc.Valid() {
		t.Fatalf("?trace=1 response header %q: %v", resp2.Header.Get(obs.TraceHeader), err)
	}
	if _, ok := srv.Traces().Get(sc.TraceID.String()); !ok {
		t.Error("?trace=1 through the coordinator did not reach the owner's sink")
	}
}

// TestSelfServedTraceMergesBothHalves covers the cmd/ominiserve wiring:
// a node that is both coordinator and owner shares one sink, and the
// route half and handler half of a self-served request merge into a
// single trace whose outermost view is the route.
func TestSelfServedTraceMergesBothHalves(t *testing.T) {
	stats := resilience.NewStats()
	srv := serve.New(serve.Config{Stats: stats})
	c := New(Config{
		Self:          "a",
		Peers:         map[string]string{"a": "http://127.0.0.1:0"},
		Local:         srv,
		Stats:         stats,
		Traces:        srv.Traces(),
		ProbeInterval: 20 * time.Millisecond,
	})
	page := sitegen.Canoe()

	req := httptest.NewRequest(http.MethodPost, "/extract?site="+page.Site, strings.NewReader(page.HTML))
	rec := httptest.NewRecorder()
	c.ServeHTTP(rec, req)
	resp := rec.Result()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	sc, err := obs.ParseTraceHeader(resp.Header.Get(obs.TraceHeader))
	if err != nil || !sc.Valid() {
		t.Fatal("self-served response has no valid trace header")
	}

	td, ok := srv.Traces().Get(sc.TraceID.String())
	if !ok {
		t.Fatal("shared sink has no merged trace")
	}
	if td.Op != "route" {
		t.Errorf("merged Op = %q, want the route half outermost", td.Op)
	}
	var route, handler obs.PhaseSample
	for _, s := range td.Spans {
		switch s.Name {
		case "route":
			route = s
		case "handler":
			handler = s
		}
	}
	if route.SpanID == "" || handler.SpanID == "" {
		t.Fatalf("merged trace missing a half: %+v", td.Spans)
	}
	if handler.ParentSpanID != route.SpanID {
		t.Errorf("handler parent = %q, want route %q", handler.ParentSpanID, route.SpanID)
	}
	if srv.Traces().Len() != 1 {
		t.Errorf("sink holds %d traces, want the two halves merged into 1", srv.Traces().Len())
	}
}
