package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"

	"omini/internal/govern"
)

// defaultReplicas is the number of virtual points each node places on
// the ring. 64 keeps the per-node share within a few percent of even
// for small clusters while the ring stays tiny (a 16-node cluster is
// 1024 points, one binary search per lookup).
const defaultReplicas = 64

// ringPoint is one virtual node position on the hash circle.
type ringPoint struct {
	hash uint32
	node string
}

// hashRing is a consistent-hash ring of node IDs. It is an immutable
// snapshot: membership changes build a new ring (under the
// coordinator's lock) rather than mutating a shared one, so lookups on
// the routing path never contend with the health checker.
type hashRing struct {
	replicas int
	points   []ringPoint
	distinct int
}

// buildRing places every node at replicas virtual points and sorts the
// circle. The guard is charged per point so a pathological membership
// list cannot spin the router outside governance.
func buildRing(g *govern.Guard, nodes []string, replicas int) (*hashRing, error) {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &hashRing{
		replicas: replicas,
		points:   make([]ringPoint, 0, len(nodes)*replicas),
		distinct: len(nodes),
	}
	for _, node := range nodes {
		for i := 0; i < replicas; i++ {
			if err := g.Poll(); err != nil {
				return nil, err
			}
			r.points = append(r.points, ringPoint{hash: ringHash(node + "#" + strconv.Itoa(i)), node: node})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r, nil
}

// ringHash is the point hash: FNV-1a, stable across processes so every
// node in a symmetric deployment computes the same ring.
func ringHash(key string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return h.Sum32()
}

// size returns the number of distinct nodes on the ring.
func (r *hashRing) size() int {
	if r == nil {
		return 0
	}
	return r.distinct
}

// successors returns up to n distinct nodes for key, in ring order
// starting at key's successor point: the first entry is the key's
// owner, the rest are its failover chain. The guard is charged per
// step walked.
func (r *hashRing) successors(g *govern.Guard, key string, n int) ([]string, error) {
	if r == nil || len(r.points) == 0 || n <= 0 {
		return nil, nil
	}
	if n > r.distinct {
		n = r.distinct
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		if err := g.Poll(); err != nil {
			return nil, err
		}
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out, nil
}

// owner returns the node owning key ("" on an empty ring).
func (r *hashRing) owner(g *govern.Guard, key string) (string, error) {
	nodes, err := r.successors(g, key, 1)
	if err != nil || len(nodes) == 0 {
		return "", err
	}
	return nodes[0], nil
}
