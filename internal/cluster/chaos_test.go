package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"omini/internal/core"
	"omini/internal/fetch"
	"omini/internal/resilience"
	"omini/internal/serve"
	"omini/internal/sitegen"
)

// chaosSpecs mirrors the fetch-layer chaos corpus: ten synthetic sites
// across layouts and domains, twenty pages each — the 200-page batch.
func chaosSpecs() []sitegen.SiteSpec {
	layouts := []string{
		"row-table", "ul-record", "dl-record", "item-table", "para-record",
		"para-div", "div-card", "hr-record", "font-catalog", "row-table",
	}
	domains := []sitegen.Domain{
		sitegen.DomainBooks, sitegen.DomainNews, sitegen.DomainProducts,
		sitegen.DomainSearch, sitegen.DomainAuctions,
	}
	specs := make([]sitegen.SiteSpec, len(layouts))
	for i, layout := range layouts {
		specs[i] = sitegen.SiteSpec{
			Name:       "chaos-" + string(rune('a'+i)) + ".example",
			Domain:     domains[i%len(domains)],
			LayoutName: layout,
			MinItems:   5, MaxItems: 14,
		}
	}
	return specs
}

// TestKillANodeChaosProof is the acceptance experiment for cluster mode:
// a 200-page batch is fetched from a hostile upstream (connection resets
// and slow-drip responses on top of 500s) and distributed across a
// three-node cluster; one node is killed mid-batch. The proof obligations:
// every page extracts (100%), results stay in input order, and the
// failover/ejection counters record the event. Run under -race by
// scripts/ci.sh.
func TestKillANodeChaosProof(t *testing.T) {
	// --- Fetch stage: pull the corpus through a faulty upstream. ---
	corpus := fetch.NewCorpusServer()
	var pages []sitegen.Page
	var sites []string
	for _, spec := range chaosSpecs() {
		for i := 0; i < 20; i++ {
			page := spec.Page(i)
			corpus.Add(page)
			pages = append(pages, page)
			sites = append(sites, spec.Name)
		}
	}
	if len(pages) != 200 {
		t.Fatalf("corpus = %d pages, want 200", len(pages))
	}

	faulty := fetch.NewFaultyServer(corpus, fetch.FaultConfig{
		ErrorRate:    0.10,
		ResetRate:    0.08, // hard TCP RSTs
		SlowDripRate: 0.07, // intact bodies, trickled
		DripChunk:    512,
		DripDelay:    time.Millisecond,
		// Faults stay transient so a 5-attempt retry budget converges.
		MaxConsecutive: 3,
		Seed:           7,
	})
	if err := faulty.Start(); err != nil {
		t.Fatal(err)
	}
	defer faulty.Close()

	fetcher := fetch.Fetcher{Retry: &resilience.RetryPolicy{
		MaxAttempts:    5,
		BaseDelay:      time.Millisecond,
		MaxDelay:       8 * time.Millisecond,
		AttemptTimeout: 10 * time.Second,
		Stats:          resilience.NewStats(),
	}}
	bodies := make([]string, len(pages))
	var fwg sync.WaitGroup
	sem := make(chan struct{}, 16)
	for i := range pages {
		fwg.Add(1)
		go func(i int) {
			defer fwg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			body, err := fetcher.Fetch(context.Background(), faulty.URL(pages[i]))
			if err != nil {
				t.Errorf("fetch %s: %v", pages[i].Name, err)
				return
			}
			bodies[i] = body
		}(i)
	}
	fwg.Wait()
	if t.Failed() {
		t.Fatal("fetch stage did not converge; aborting before the cluster stage")
	}
	bd := faulty.Breakdown()
	if bd.Resets == 0 || bd.Drips == 0 {
		t.Fatalf("chaos upstream too quiet: resets=%d drips=%d", bd.Resets, bd.Drips)
	}

	reqs := make([]core.BatchRequest, len(pages))
	for i := range pages {
		if bodies[i] != pages[i].HTML {
			t.Fatalf("page %s: fetched body differs from source", pages[i].Name)
		}
		reqs[i] = core.BatchRequest{Site: sites[i], HTML: bodies[i]}
	}

	// --- Cluster stage: three nodes, one dies mid-batch. ---
	nodes := make([]*httptest.Server, 3)
	peers := make(map[string]string, 3)
	for i := range nodes {
		inner := serve.New(serve.Config{Stats: resilience.NewStats()})
		// A small per-request delay stretches the batch past the probe
		// interval so the kill genuinely lands mid-flight.
		nodes[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/extract" {
				time.Sleep(3 * time.Millisecond)
			}
			inner.ServeHTTP(w, r)
		}))
		defer nodes[i].Close()
		peers[fmt.Sprintf("n%d", i)] = nodes[i].URL
	}
	stats := resilience.NewStats()
	c := New(Config{
		Peers:         peers,
		Local:         serve.New(serve.Config{Stats: stats}),
		Stats:         stats,
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  250 * time.Millisecond,
		FailThreshold: 2,
		NodeAttempts:  2,
		RetryBase:     time.Millisecond,
		RetryMaxDelay: 4 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = c.Run(ctx) }()

	// Kill n1 once a third of the batch has been served.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		for stats.Get(SeriesBatchPages) < 65 {
			time.Sleep(time.Millisecond)
		}
		nodes[1].CloseClientConnections()
		nodes[1].Close()
	}()

	results := c.ExtractBatch(context.Background(), reqs, BatchOptions{Workers: 8})
	<-killed

	// 100% of pages extracted, in input order, each attributed to a node.
	for i, res := range results {
		if res.Err != nil {
			t.Errorf("page %d (%s): %v", i, res.Site, res.Err)
			continue
		}
		if res.Status != http.StatusOK {
			t.Errorf("page %d (%s): status %d", i, res.Site, res.Status)
			continue
		}
		if res.Site != reqs[i].Site {
			t.Fatalf("result %d out of order: site %q, want %q", i, res.Site, reqs[i].Site)
		}
		var payload struct {
			Site    string `json:"site"`
			Node    string `json:"node"`
			Objects []any  `json:"objects"`
		}
		if err := json.Unmarshal(res.Body, &payload); err != nil {
			t.Fatalf("page %d: bad response JSON: %v", i, err)
		}
		if payload.Site != reqs[i].Site {
			t.Fatalf("result %d out of order: body site %q, want %q", i, payload.Site, reqs[i].Site)
		}
		if res.Node == "" || payload.Node == "" {
			t.Errorf("page %d (%s): missing node attribution (%q / %q)", i, res.Site, res.Node, payload.Node)
		}
		if len(payload.Objects) == 0 {
			t.Errorf("page %d (%s): extracted zero objects", i, res.Site)
		}
	}

	failover := stats.Get(SeriesFailover)
	ejections := stats.Get(SeriesEjections)
	redispatch := stats.Get(SeriesRedispatch)
	t.Logf("chaos: batch_pages=%d failover=%d ejections=%d redispatch=%d fallback_local=%d resets=%d drips=%d",
		stats.Get(SeriesBatchPages), failover, ejections, redispatch,
		stats.Get(SeriesFallbackLocal), bd.Resets, bd.Drips)
	if failover == 0 {
		t.Error("cluster.failover = 0; killing a node mid-batch must force failover")
	}
	if ejections == 0 {
		t.Error("cluster.ejections = 0; the health checker never ejected the dead node")
	}
	if got := stats.Get(SeriesBatchPages); got != 200 {
		t.Errorf("cluster.batch_pages = %d, want 200", got)
	}
}
