// Package cluster is the horizontal scale-out layer of ominiserve: a
// stdlib-only (HTTP/JSON) cluster mode in which a coordinator/proxy
// consistent-hash-partitions sites onto member nodes, so each node's
// wrapper farm (internal/farm) and wrapper caches stay hot for its
// shard (the paper's Table 17 fast path only pays off when repeat
// traffic for a host lands on the node whose farm learned its rule —
// TestFarmShardAffinity pins this to exactly one discovery per site
// cluster-wide).
//
// Membership is tracked by periodic health checks (/healthz liveness
// plus /readyz readiness on every node) with failure-count-based
// ejection and automatic re-admission; ejecting a node rebuilds the
// ring so its shard remaps to the survivors. The routing path reuses
// internal/resilience end to end: a circuit breaker per node, capped
// backoff+jitter retries per hop, and failover to the next node on
// the ring when a hop fails. Downstream load-shed responses (429/503
// with Retry-After) are honored — relayed to the client, never
// retried blindly — and when every peer for a shard is down the
// coordinator degrades to local extraction instead of erroring.
//
// Everything is governed (a govern.Guard is charged in every routing,
// health and dispatch loop; each request runs under a routing budget
// derived from the govern deadline, split into per-hop budgets) and
// observable (the cluster.* series, per-node latency quantiles on
// GET /clusterz, an X-Omini-Node header plus a "node" field in routed
// JSON responses recording which node served).
//
// Routed requests are distributed-traced end to end: the coordinator
// makes one sampling decision per request, records "route" and "hop"
// spans, and forwards the hop span's context in the X-Omini-Trace
// header, so the serving node's handler and pipeline spans parent into
// the coordinator's span tree under one 128-bit trace ID. Both halves
// land in the tail-sampling sink behind the nodes' GET /tracez.
package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"omini/internal/govern"
	"omini/internal/obs"
	"omini/internal/resilience"
)

// Config tunes a Coordinator. Local is required; everything else has
// defaults.
type Config struct {
	// Self is this node's ID among Peers. Requests whose shard is
	// owned by Self are served by Local without a network hop. Empty
	// means a pure coordinator that is not itself a ring member.
	Self string
	// Peers maps node ID → base URL ("http://host:port") for every
	// cluster member, including Self when this node is one.
	Peers map[string]string
	// Local is the local extraction handler (the serve.Server): the
	// self shard, the pass-through for unrouted requests, and the
	// degraded fallback when every peer for a shard is down.
	Local http.Handler
	// Replicas is the number of virtual ring points per node
	// (default 64).
	Replicas int
	// FailThreshold is the number of consecutive failed health probes
	// that ejects a node from the ring (default 3). One successful
	// probe re-admits it.
	FailThreshold int
	// ProbeInterval is the health-check period (default 1s);
	// ProbeTimeout bounds each probe (default 2s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// NodeAttempts is how many times one hop is tried (with capped
	// backoff+jitter) before failing over to the next node on the
	// ring (default 2).
	NodeAttempts int
	// RetryBase / RetryMaxDelay shape the per-hop backoff
	// (defaults 25ms / 250ms).
	RetryBase     time.Duration
	RetryMaxDelay time.Duration
	// Breaker tunes the per-node circuit breakers. Zero fields take
	// the resilience defaults.
	Breaker resilience.BreakerConfig
	// Budget is the per-request routing deadline, the cluster
	// equivalent of the govern page deadline: the candidate walk, all
	// hops included, must finish inside it. It is split into per-hop
	// budgets so one slow node cannot eat the whole request
	// (default govern.Default().Deadline).
	Budget time.Duration
	// MaxBodyBytes caps routed request bodies (default 8 MiB; the
	// body must be buffered for replay across hops).
	MaxBodyBytes int64
	// Stats receives the cluster.* metrics; nil uses
	// resilience.Default (the process registry).
	Stats *resilience.Stats
	// Logger receives the routing and membership log; nil uses
	// obs.DefaultLogger().
	Logger *obs.Logger
	// Client performs proxy hops and health probes; nil uses a
	// dedicated client with sane connection reuse.
	Client *http.Client
	// Traces receives the coordinator's half of each traced request's
	// span tree. Share the local serve.Server's sink so the route and
	// handler halves of a self-served request merge into one trace on
	// /tracez; nil builds a private sink.
	Traces *obs.TraceSink
	// TraceSampleRate is the fraction of routed requests traced when
	// the client did not decide (0 = all, negative = none). The
	// coordinator's decision is forwarded in the X-Omini-Trace header,
	// so the serving node never samples independently.
	TraceSampleRate float64
	// OnReadmission, when set, is called (outside the membership lock,
	// once per transition) with a node's id each time the health
	// checker re-admits it to the ring after an ejection. ominiserve
	// hooks the ruledist replicator here: a node coming back has been
	// missing writes, so a sync round is due immediately, not at the
	// next anti-entropy tick.
	OnReadmission func(id string)
}

// member is the coordinator's view of one cluster node. Mutable state
// is guarded by the coordinator's mu; the latency histogram and
// served counter are internally synchronized.
type member struct {
	id  string
	url string

	healthy bool   // admitted to the ring
	fails   int    // consecutive failed probes
	lastErr string // last probe failure, for /clusterz

	lat    *obs.Histogram // proxy-hop latency to this node
	served atomic.Int64   // requests this node answered for us
}

// Coordinator routes extraction requests across the cluster. Create
// with New; it serves HTTP (wrap it where Local was), and Run drives
// the health checker.
type Coordinator struct {
	cfg      Config
	self     string
	local    http.Handler
	client   *http.Client
	stats    *resilience.Stats
	log      *obs.Logger
	breakers *resilience.BreakerGroup
	retry    *resilience.RetryPolicy
	handler  http.Handler
	traces   *obs.TraceSink
	sampler  *obs.Sampler

	mu      sync.RWMutex
	members map[string]*member
	ring    *hashRing
}

const (
	defaultFailThreshold = 3
	defaultProbeInterval = time.Second
	defaultProbeTimeout  = 2 * time.Second
	defaultNodeAttempts  = 2
	defaultRetryBase     = 25 * time.Millisecond
	defaultRetryMaxDelay = 250 * time.Millisecond
	defaultMaxBody       = 8 << 20
)

// New returns a coordinator for the configured peer set. The ring
// starts with every peer admitted; the health checker (Run) ejects
// the ones that turn out to be down.
func New(cfg Config) *Coordinator {
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = defaultFailThreshold
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = defaultProbeInterval
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = defaultProbeTimeout
	}
	if cfg.NodeAttempts <= 0 {
		cfg.NodeAttempts = defaultNodeAttempts
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = defaultRetryBase
	}
	if cfg.RetryMaxDelay <= 0 {
		cfg.RetryMaxDelay = defaultRetryMaxDelay
	}
	if cfg.Budget <= 0 {
		cfg.Budget = govern.Default().Deadline
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBody
	}
	if cfg.Stats == nil {
		cfg.Stats = resilience.Default
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.DefaultLogger()
	}
	if cfg.Traces == nil {
		cfg.Traces = obs.NewTraceSink(0)
	}
	rate := cfg.TraceSampleRate
	if rate == 0 {
		rate = 1
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 32,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	bcfg := cfg.Breaker
	bcfg.Stats = cfg.Stats
	c := &Coordinator{
		cfg:      cfg,
		self:     cfg.Self,
		local:    cfg.Local,
		client:   client,
		stats:    cfg.Stats,
		log:      cfg.Logger,
		breakers: resilience.NewBreakerGroup(bcfg),
		retry: &resilience.RetryPolicy{
			MaxAttempts: cfg.NodeAttempts,
			BaseDelay:   cfg.RetryBase,
			MaxDelay:    cfg.RetryMaxDelay,
			Stats:       cfg.Stats,
		},
		traces:  cfg.Traces,
		sampler: obs.NewSampler(rate),
		members: make(map[string]*member, len(cfg.Peers)),
	}
	for id, url := range cfg.Peers {
		c.members[id] = &member{id: id, url: url, healthy: true, lat: obs.NewHistogram(nil)}
	}
	c.mu.Lock()
	// A fresh coordinator admits everyone; membership list and replica
	// count are boot configuration, so the unguarded build cannot spin.
	c.ring = c.rebuildLocked(nil)
	c.mu.Unlock()
	c.registerMetrics()

	mux := http.NewServeMux()
	mux.HandleFunc("GET /clusterz", c.handleClusterz)
	mux.HandleFunc("/", c.handleRoot)
	c.handler = mux
	return c
}

// rebuildLocked rebuilds the ring from the currently admitted members;
// callers hold c.mu.
func (c *Coordinator) rebuildLocked(g *govern.Guard) *hashRing {
	nodes := make([]string, 0, len(c.members))
	for id, m := range c.members {
		if err := g.Poll(); err != nil {
			return c.ring // cancelled mid-rebuild: keep the old ring
		}
		if m.healthy {
			nodes = append(nodes, id)
		}
	}
	ring, err := buildRing(g, nodes, c.cfg.Replicas)
	if err != nil {
		return c.ring
	}
	return ring
}

// ServeHTTP dispatches to the router (site-carrying extraction
// requests) or the local handler (everything else).
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.handler.ServeHTTP(w, r)
}

// forwardedHeader marks proxied requests so a symmetric deployment
// (every node running -cluster) serves them locally instead of
// re-routing: one hop, never a proxy chain or loop.
const forwardedHeader = "X-Omini-Forwarded"

// nodeHeader names the node that served a routed response.
const nodeHeader = "X-Omini-Node"

// routable reports whether the request goes through the ring: an
// extraction POST carrying a site, not already forwarded by a peer,
// with at least one node to route to.
func (c *Coordinator) routable(r *http.Request) bool {
	if r.Method != http.MethodPost {
		return false
	}
	if p := r.URL.Path; p != "/extract" && p != "/records" {
		return false
	}
	if r.URL.Query().Get("site") == "" || r.Header.Get(forwardedHeader) != "" {
		return false
	}
	c.mu.RLock()
	n := len(c.members)
	c.mu.RUnlock()
	return n > 0
}

func (c *Coordinator) handleRoot(w http.ResponseWriter, r *http.Request) {
	if c.routable(r) {
		c.route(w, r)
		return
	}
	c.local.ServeHTTP(w, r)
}

// nodeStatus is one member's row in the /clusterz payload.
type nodeStatus struct {
	ID      string  `json:"id"`
	URL     string  `json:"url"`
	Self    bool    `json:"self,omitempty"`
	Healthy bool    `json:"healthy"`
	Fails   int     `json:"fails,omitempty"`
	LastErr string  `json:"lastErr,omitempty"`
	Served  int64   `json:"served"`
	P50Ms   float64 `json:"p50Ms"`
	P99Ms   float64 `json:"p99Ms"`
}

// clusterzResponse is the GET /clusterz payload: ring membership,
// per-node health, and per-node latency quantiles.
type clusterzResponse struct {
	Self      string       `json:"self,omitempty"`
	RingNodes int          `json:"ringNodes"`
	Peers     int          `json:"peers"`
	Nodes     []nodeStatus `json:"nodes"`
}

func (c *Coordinator) handleClusterz(w http.ResponseWriter, _ *http.Request) {
	c.mu.RLock()
	resp := clusterzResponse{
		Self:      c.self,
		RingNodes: c.ring.size(),
		Peers:     len(c.members),
		Nodes:     make([]nodeStatus, 0, len(c.members)),
	}
	for _, m := range c.members {
		snap := m.lat.Snapshot()
		resp.Nodes = append(resp.Nodes, nodeStatus{
			ID:      m.id,
			URL:     m.url,
			Self:    m.id == c.self,
			Healthy: m.healthy,
			Fails:   m.fails,
			LastErr: m.lastErr,
			Served:  m.served.Load(),
			P50Ms:   snap.Quantile(0.50) * 1000,
			P99Ms:   snap.Quantile(0.99) * 1000,
		})
	}
	c.mu.RUnlock()
	sortNodes(resp.Nodes)
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// sortNodes orders the /clusterz rows by ID for stable output.
func sortNodes(nodes []nodeStatus) {
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && nodes[j].ID < nodes[j-1].ID; j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
}

// errorResponse mirrors serve's structured JSON error payload, so
// cluster-originated failures look identical to node-originated ones.
type errorResponse struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
	// TraceID correlates the failure with its /tracez record, when the
	// request was traced.
	TraceID string `json:"traceId,omitempty"`
}

// writeError sends a structured JSON error with the given status,
// stamping the context's trace ID (when traced) into the body.
func writeError(ctx context.Context, w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(errorResponse{Error: msg, Status: status, TraceID: obs.TraceIDStringFrom(ctx)})
}
