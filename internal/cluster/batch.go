package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"runtime"
	"strings"
	"sync"

	"omini/internal/core"
	"omini/internal/govern"
)

// BatchResult is the cluster-level outcome for one page, in input
// order.
type BatchResult struct {
	// Site echoes the request's site.
	Site string
	// Node is the cluster node that served the page (the fallback path
	// is marked "<node> (fallback)"); empty when the page was never
	// dispatched.
	Node string
	// Redispatched reports that the page was served by a node other
	// than its ring owner at dispatch time — the owner died, was
	// ejected, or shed the page mid-batch.
	Redispatched bool
	// Status is the HTTP status of the serving response.
	Status int
	// Body is the raw JSON response (the extraction payload on
	// success, the structured error otherwise).
	Body []byte
	// Err is the per-page failure, if any.
	Err error
}

// BatchOptions tune ExtractBatch.
type BatchOptions struct {
	// Workers bounds concurrency (default: GOMAXPROCS).
	Workers int
}

// ExtractBatch distributes a batch across the cluster: each page is
// routed to its site's ring owner (keeping that node's rule cache hot)
// through the same failover walk as interactive requests, so pages
// assigned to a node that dies mid-batch are transparently re-served
// by survivors — or by the coordinator's local fallback when no
// survivor remains. PR-4's batch semantics are preserved: results are
// in input order, cancelling ctx stops dispatch promptly, and requests
// never handed to a worker report core.ErrUndispatched wrapping
// ctx.Err(). A page that exhausts its routing budget dead-letters with
// govern.ErrDeadline while the pool survives.
func (c *Coordinator) ExtractBatch(ctx context.Context, reqs []core.BatchRequest, opts BatchOptions) []BatchResult {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	results := make([]BatchResult, len(reqs))
	dispatched := make([]bool, len(reqs))
	var (
		wg   sync.WaitGroup
		next = make(chan int)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = c.extractPage(ctx, reqs[i])
			}
		}()
	}
	// The dispatch loop runs on the calling goroutine, so it owns this
	// guard; each worker page runs under its own (extractPage).
	g := govern.NewGuard(ctx, govern.Unlimited())
dispatch:
	for i := 0; i < len(reqs); i++ {
		if err := g.Poll(); err != nil {
			break dispatch
		}
		select {
		case next <- i:
			dispatched[i] = true
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	// Mark undispatched requests distinctly from interrupted ones.
	for i := range reqs {
		if !dispatched[i] {
			results[i] = BatchResult{Site: reqs[i].Site, Err: fmt.Errorf("%w: %w", core.ErrUndispatched, ctx.Err())}
		}
	}
	return results
}

// extractPage routes one batch page through the cluster, capturing the
// response and attributing it to the node that served.
func (c *Coordinator) extractPage(ctx context.Context, req core.BatchRequest) BatchResult {
	g := govern.NewGuard(ctx, govern.Unlimited())
	c.mu.RLock()
	ring := c.ring
	c.mu.RUnlock()
	owner, _ := ring.owner(g, req.Site)

	hr, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"/extract?site="+url.QueryEscape(req.Site), strings.NewReader(req.HTML))
	if err != nil {
		c.stats.Add(SeriesBatchPages, 1)
		c.stats.Add(SeriesBatchErrors, 1)
		return BatchResult{Site: req.Site, Err: fmt.Errorf("cluster: build batch request: %w", err)}
	}
	hr.Header.Set("Content-Type", "text/html")

	buf := &bufferedResponse{header: make(http.Header), status: http.StatusOK}
	if c.routable(hr) {
		c.route(buf, hr)
	} else {
		buf.header.Set(nodeHeader, "local")
		c.local.ServeHTTP(buf, hr)
	}

	out := BatchResult{
		Site:   req.Site,
		Node:   buf.header.Get(nodeHeader),
		Status: buf.status,
		Body:   buf.body.Bytes(),
	}
	c.stats.Add(SeriesBatchPages, 1)
	if owner != "" && out.Node != "" && out.Node != owner {
		out.Redispatched = true
		c.stats.Add(SeriesRedispatch, 1)
	}
	switch {
	case buf.status == http.StatusGatewayTimeout:
		out.Err = fmt.Errorf("%w: cluster: page routing budget exhausted", govern.ErrDeadline)
	case buf.status >= 400:
		out.Err = fmt.Errorf("cluster: page failed: status %d", buf.status)
	}
	if out.Err != nil {
		c.stats.Add(SeriesBatchErrors, 1)
	}
	return out
}
