// Package eval implements the experiment harness of the paper's Section 6:
// rank-probability distributions of the separator heuristics (Tables 10,
// 13, 20), precision/recall (Tables 14, 15), the 26-combination sweep
// (Table 11), the BYU comparison (Tables 19, 20), the subtree-heuristic
// evaluation behind Table 1, and the per-phase timing studies (Tables 16,
// 17).
//
// Methodology follows the paper: pages are labelled with the minimal
// subtree path and all correct separator tags (the corpus carries this
// ground truth); heuristics run against the labelled subtree; success is
// the per-site fraction of pages whose rank-1 candidate is correct,
// averaged over sites.
package eval

import (
	"fmt"

	"omini/internal/combine"
	"omini/internal/corpus"
	"omini/internal/separator"
	"omini/internal/sitegen"
	"omini/internal/tagtree"
)

// MaxRank is the deepest rank the distributions report, matching the
// paper's five-column tables.
const MaxRank = 5

// PreparedPage is a corpus page parsed once, with every heuristic's ranking
// cached, so combination sweeps do not re-run heuristics.
type PreparedPage struct {
	Page sitegen.Page
	// Sub is the ground-truth object-rich subtree.
	Sub *tagtree.Node
	// Lists holds each heuristic's ranking on Sub, by heuristic name.
	Lists map[string][]separator.Ranked
	// TieBreak is the candidate-order tie-break map for combination.
	TieBreak map[string]int
}

// PreparedSite is one site's prepared pages.
type PreparedSite struct {
	Site  string
	Pages []PreparedPage
}

// Prepare parses every page of the collection and caches all heuristic
// rankings. Heuristics must have unique names; the Omini five plus BYU's
// HC and IT is the usual set.
func Prepare(sites []corpus.SitePages, heuristics []separator.Heuristic) ([]PreparedSite, error) {
	out := make([]PreparedSite, 0, len(sites))
	for _, sp := range sites {
		ps := PreparedSite{Site: sp.Spec.Name, Pages: make([]PreparedPage, 0, len(sp.Pages))}
		for _, page := range sp.Pages {
			prepared, err := preparePage(page, heuristics)
			if err != nil {
				return nil, fmt.Errorf("eval: prepare %s: %w", page.Name, err)
			}
			ps.Pages = append(ps.Pages, prepared)
		}
		out = append(out, ps)
	}
	return out, nil
}

func preparePage(page sitegen.Page, heuristics []separator.Heuristic) (PreparedPage, error) {
	root, err := tagtree.Parse(page.HTML)
	if err != nil {
		return PreparedPage{}, err
	}
	sub := tagtree.FindPath(root, page.Truth.SubtreePath)
	if sub == nil {
		return PreparedPage{}, fmt.Errorf("truth path %q does not resolve", page.Truth.SubtreePath)
	}
	st := separator.NewStats(sub)
	lists := make(map[string][]separator.Ranked, len(heuristics))
	for _, h := range heuristics {
		lists[h.Name()] = separator.RankWith(st, h)
	}
	return PreparedPage{
		Page:     page,
		Sub:      sub,
		Lists:    lists,
		TieBreak: st.FirstIndex(),
	}, nil
}

// Dist is a rank-probability row of Tables 10/13/20 plus the
// success/precision/recall triple of Tables 14/15.
type Dist struct {
	// Name identifies the heuristic or combination.
	Name string
	// Rank[k] is the probability (averaged per site) that the correct
	// separator appears at rank k+1.
	Rank [MaxRank]float64
	// Success is Rank[0]: the probability the top candidate is correct.
	Success float64
	// Precision is TP/(TP+FP): the fraction of produced answers that are
	// correct.
	Precision float64
	// Recall is TP/(TP+FN) = Success: the fraction of pages whose
	// separator is found.
	Recall float64
}

// ranker turns a prepared page into a candidate tag ranking.
type ranker func(p *PreparedPage) []string

// distOf scores a ranker over the prepared sites: per-site rank histograms
// and TP/FP/FN tallies, averaged across sites as the paper does.
func distOf(name string, sites []PreparedSite, rank ranker) Dist {
	d := Dist{Name: name}
	var (
		rankSum   [MaxRank]float64
		precSum   float64
		precSites int
		nSites    int
	)
	for _, site := range sites {
		if len(site.Pages) == 0 {
			continue
		}
		nSites++
		var hist [MaxRank]int
		var tp, fp int
		for i := range site.Pages {
			p := &site.Pages[i]
			tags := rank(p)
			r := correctRank(tags, p.Page.Truth)
			if r >= 1 && r <= MaxRank {
				hist[r-1]++
			}
			if len(tags) == 0 {
				continue // no answer: a false negative, not a false positive
			}
			if p.Page.Truth.CorrectSeparator(tags[0]) {
				tp++
			} else {
				fp++
			}
		}
		pages := float64(len(site.Pages))
		for k := 0; k < MaxRank; k++ {
			rankSum[k] += float64(hist[k]) / pages
		}
		if tp+fp > 0 {
			precSum += float64(tp) / float64(tp+fp)
			precSites++
		}
	}
	if nSites == 0 {
		return d
	}
	for k := 0; k < MaxRank; k++ {
		d.Rank[k] = rankSum[k] / float64(nSites)
	}
	d.Success = d.Rank[0]
	d.Recall = d.Success
	if precSites > 0 {
		d.Precision = precSum / float64(precSites)
	}
	return d
}

// correctRank returns the 1-based rank of the first correct separator tag
// in the candidate list, or 0 if absent.
func correctRank(tags []string, truth sitegen.Truth) int {
	for i, tag := range tags {
		if truth.CorrectSeparator(tag) {
			return i + 1
		}
	}
	return 0
}

// HeuristicDist scores one heuristic (by name) over the prepared sites —
// one row of Table 10/13/20.
func HeuristicDist(name string, sites []PreparedSite) Dist {
	return distOf(name, sites, func(p *PreparedPage) []string {
		return separator.Tags(p.Lists[name])
	})
}

// CombinationDist scores a heuristic combination under the probability
// table — the RSIPB row of Table 13, or any Table 11/20 entry.
func CombinationDist(combo combine.Combination, table combine.ProbTable, sites []PreparedSite) Dist {
	return distOf(combo.Name, sites, func(p *PreparedPage) []string {
		lists := make([]combine.RankedList, len(combo.Heuristics))
		for i, h := range combo.Heuristics {
			lists[i] = combine.RankedList{Name: h.Name(), Ranked: p.Lists[h.Name()]}
		}
		cands := combine.CombineLists(lists, table, p.TieBreak)
		tags := make([]string, len(cands))
		for i, c := range cands {
			tags[i] = c.Tag
		}
		return tags
	})
}

// MeasureProbs converts measured rank distributions into a probability
// table for combination — how the paper turns Table 10 into the combined
// algorithm's evidence.
func MeasureProbs(sites []PreparedSite, heuristics []separator.Heuristic) combine.ProbTable {
	table := make(combine.ProbTable, len(heuristics))
	for _, h := range heuristics {
		d := HeuristicDist(h.Name(), sites)
		probs := make([]float64, MaxRank)
		copy(probs, d.Rank[:])
		table[h.Name()] = probs
	}
	return table
}

// SweepCombinations scores every combination of the given heuristics with
// at least two members (the 26 combinations of Table 11 for the Omini
// five), returning them in the enumeration order of combine.Combinations.
func SweepCombinations(heuristics []separator.Heuristic, table combine.ProbTable, sites []PreparedSite) []Dist {
	combos := combine.Combinations(heuristics, 2)
	out := make([]Dist, len(combos))
	for i, c := range combos {
		out[i] = CombinationDist(c, table, sites)
	}
	return out
}
