package eval

import (
	"strings"

	"omini/internal/core"
	"omini/internal/corpus"
	"omini/internal/extract"
)

// ObjectPR is object-level precision and recall for the full end-to-end
// pipeline — the measurement behind the paper's abstract claim of "100%
// precision (returns only correct objects) and excellent recall (between
// 93% and 98%)". Unlike the separator-level Tables 14/15, this runs the
// complete system (its own subtree discovery, separator combination,
// construction and refinement) and scores the extracted objects against
// the pages' known items.
type ObjectPR struct {
	Label string
	// Precision is the fraction of extracted objects that are real items
	// (averaged per site).
	Precision float64
	// Recall is the fraction of real items that were extracted.
	Recall float64
	// Pages is the number of pages evaluated; Failed counts pages where
	// the pipeline returned an error.
	Pages  int
	Failed int
}

// MeasureObjectPR runs the full pipeline over the collection and scores
// objects by title containment: an extracted object is a true positive
// when it contains exactly one ground-truth title; items whose titles
// appear in no extracted object are misses.
func MeasureObjectPR(label string, sites []corpus.SitePages, opts core.Options) ObjectPR {
	extractor := core.New(opts)
	out := ObjectPR{Label: label}
	var precSum, recSum float64
	nSites := 0
	for _, sp := range sites {
		if len(sp.Pages) == 0 {
			continue
		}
		nSites++
		var sitePrec, siteRec float64
		for _, page := range sp.Pages {
			out.Pages++
			res, err := extractor.Extract(page.HTML)
			if err != nil {
				out.Failed++
				continue // zero precision/recall contribution
			}
			p, r := scoreObjects(res.Objects, page.Truth.ObjectTitles)
			sitePrec += p
			siteRec += r
		}
		pages := float64(len(sp.Pages))
		precSum += sitePrec / pages
		recSum += siteRec / pages
	}
	if nSites > 0 {
		out.Precision = precSum / float64(nSites)
		out.Recall = recSum / float64(nSites)
	}
	return out
}

// scoreObjects computes one page's object precision and recall.
func scoreObjects(objects []extract.Object, titles []string) (precision, recall float64) {
	if len(titles) == 0 {
		return 0, 0
	}
	if len(objects) == 0 {
		return 0, 0
	}
	matched := make([]bool, len(titles))
	truePositives := 0
	for _, o := range objects {
		text := o.Text()
		hits := 0
		hitIdx := -1
		for i, title := range titles {
			if strings.Contains(text, title) {
				hits++
				hitIdx = i
			}
		}
		// Exactly one item's title: a correctly bounded object. Zero: a
		// chrome block that slipped through. More than one: objects were
		// merged by a wrong separator.
		if hits == 1 {
			truePositives++
			matched[hitIdx] = true
		}
	}
	found := 0
	for _, m := range matched {
		if m {
			found++
		}
	}
	return float64(truePositives) / float64(len(objects)),
		float64(found) / float64(len(titles))
}
