package eval

import (
	"context"
	"fmt"
	"time"

	"omini/internal/core"
	"omini/internal/corpus"
	"omini/internal/fetch"
	"omini/internal/rules"
)

// TimingRow is one row of Table 16 or 17: mean per-phase extraction cost in
// milliseconds over a page collection.
type TimingRow struct {
	Label     string
	ReadFile  float64
	Parse     float64
	Subtree   float64
	Separator float64
	Combine   float64
	Construct float64
	Total     float64
	Pages     int
}

// add accumulates one page's timing (already averaged over repeats).
func (r *TimingRow) add(read time.Duration, t core.Timing) {
	const ms = float64(time.Millisecond)
	r.ReadFile += float64(read) / ms
	r.Parse += float64(t.Parse) / ms
	r.Subtree += float64(t.Subtree) / ms
	r.Separator += float64(t.Separator) / ms
	r.Combine += float64(t.Combine) / ms
	r.Construct += float64(t.Construct) / ms
	r.Total += float64(read+t.Parse+t.Subtree+t.Separator+t.Combine+t.Construct) / ms
	r.Pages++
}

// finish converts sums to means.
func (r *TimingRow) finish() {
	if r.Pages == 0 {
		return
	}
	n := float64(r.Pages)
	r.ReadFile /= n
	r.Parse /= n
	r.Subtree /= n
	r.Separator /= n
	r.Combine /= n
	r.Construct /= n
	r.Total /= n
}

// TimingOptions configure a timing measurement.
type TimingOptions struct {
	// Repeats runs each page this many times and averages, as the paper
	// did ("for each web page the algorithms were run ten times").
	// Default 1.
	Repeats int
	// UseRules measures the cached-rule fast path of Table 17: a rule is
	// learned from each site's first page and replayed on the rest.
	UseRules bool
}

// MeasureTiming serves the collection over a loopback HTTP server, fetches
// and extracts every page, and returns the mean per-phase cost — the
// methodology behind Tables 16 and 17.
func MeasureTiming(label string, sites []corpus.SitePages, opts TimingOptions) (TimingRow, error) {
	repeats := opts.Repeats
	if repeats < 1 {
		repeats = 1
	}
	srv := fetch.NewCorpusServer()
	for _, sp := range sites {
		srv.Add(sp.Pages...)
	}
	if err := srv.Start(); err != nil {
		return TimingRow{}, err
	}
	defer srv.Close()

	var (
		f         fetch.Fetcher
		extractor = core.New(core.Options{})
		row       = TimingRow{Label: label}
		ctx       = context.Background()
	)
	for _, sp := range sites {
		var rule rules.Rule
		if opts.UseRules && len(sp.Pages) > 0 {
			body, err := f.Fetch(ctx, srv.URL(sp.Pages[0]))
			if err != nil {
				return row, fmt.Errorf("eval: fetch rule page: %w", err)
			}
			res, err := extractor.Extract(body)
			if err != nil {
				return row, fmt.Errorf("eval: learn rule for %s: %w", sp.Spec.Name, err)
			}
			rule = res.Rule(sp.Spec.Name)
		}
		for _, page := range sp.Pages {
			var (
				readSum time.Duration
				sum     core.Timing
			)
			for rep := 0; rep < repeats; rep++ {
				start := time.Now()
				body, err := f.Fetch(ctx, srv.URL(page))
				readSum += time.Since(start)
				if err != nil {
					return row, fmt.Errorf("eval: fetch %s: %w", page.Name, err)
				}
				var res *core.Result
				if opts.UseRules {
					res, err = extractor.ExtractWithRule(body, rule)
				} else {
					res, err = extractor.Extract(body)
				}
				if err != nil {
					return row, fmt.Errorf("eval: extract %s: %w", page.Name, err)
				}
				sum = addTiming(sum, res.Timing)
			}
			row.add(readSum/time.Duration(repeats), divTiming(sum, repeats))
		}
	}
	row.finish()
	return row, nil
}

func addTiming(a, b core.Timing) core.Timing {
	a.Parse += b.Parse
	a.Subtree += b.Subtree
	a.Separator += b.Separator
	a.Combine += b.Combine
	a.Construct += b.Construct
	return a
}

func divTiming(t core.Timing, n int) core.Timing {
	d := time.Duration(n)
	t.Parse /= d
	t.Subtree /= d
	t.Separator /= d
	t.Combine /= d
	t.Construct /= d
	return t
}

// CombineRows merges timing rows into their weighted combined row, matching
// the "Combined" line of Tables 16/17.
func CombineRows(label string, rows ...TimingRow) TimingRow {
	var out TimingRow
	out.Label = label
	for _, r := range rows {
		n := float64(r.Pages)
		out.ReadFile += r.ReadFile * n
		out.Parse += r.Parse * n
		out.Subtree += r.Subtree * n
		out.Separator += r.Separator * n
		out.Combine += r.Combine * n
		out.Construct += r.Construct * n
		out.Total += r.Total * n
		out.Pages += r.Pages
	}
	out.finish()
	return out
}
