package eval

import (
	"omini/internal/core"
	"omini/internal/corpus"
)

// Confidence calibration: validating the self-evaluation hook (the paper's
// feedback-based-refinement direction) against ground truth. A useful
// confidence score must be monotone with actual correctness — high-scored
// extractions right far more often than low-scored ones — so an
// aggregation service can gate on it.

// ConfidenceBucket is one row of the calibration table.
type ConfidenceBucket struct {
	// Lo and Hi bound the bucket's confidence range [Lo, Hi).
	Lo, Hi float64
	// Pages is the number of extractions whose confidence fell in range.
	Pages int
	// Accuracy is the fraction of those whose chosen separator was
	// correct.
	Accuracy float64
}

// ConfidenceCalibration runs the full pipeline over the collection and
// buckets extractions by reported confidence, measuring separator accuracy
// within each bucket. Pages that fail to extract at all are counted in the
// lowest bucket with zero accuracy (the score's "do not trust" region).
func ConfidenceCalibration(sites []corpus.SitePages, edges []float64) []ConfidenceBucket {
	if len(edges) < 2 {
		edges = []float64{0, 0.5, 0.75, 0.9, 1.01}
	}
	buckets := make([]ConfidenceBucket, len(edges)-1)
	correct := make([]int, len(buckets))
	for i := range buckets {
		buckets[i].Lo = edges[i]
		buckets[i].Hi = edges[i+1]
	}
	place := func(c float64) int {
		for i := range buckets {
			if c >= buckets[i].Lo && c < buckets[i].Hi {
				return i
			}
		}
		return len(buckets) - 1
	}
	extractor := core.New(core.Options{})
	for _, sp := range sites {
		for _, page := range sp.Pages {
			res, err := extractor.Extract(page.HTML)
			if err != nil {
				buckets[0].Pages++
				continue
			}
			i := place(res.Confidence())
			buckets[i].Pages++
			if page.Truth.CorrectSeparator(res.Separator) {
				correct[i]++
			}
		}
	}
	for i := range buckets {
		if buckets[i].Pages > 0 {
			buckets[i].Accuracy = float64(correct[i]) / float64(buckets[i].Pages)
		}
	}
	return buckets
}
