package eval

import (
	"fmt"
	"io"
	"sort"
)

// This file renders experiment results as the paper's tables, for
// cmd/ominibench and EXPERIMENTS.md.

// WriteDistTable prints rank-probability rows in the format of Tables 10,
// 13 and 20.
func WriteDistTable(w io.Writer, title string, dists []Dist) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-8s %7s %6s %6s %6s %6s\n", "Heuristic", "Rank 1", "2", "3", "4", "5")
	for _, d := range dists {
		fmt.Fprintf(w, "%-8s %7.2f %6.2f %6.2f %6.2f %6.2f\n",
			d.Name, d.Rank[0], d.Rank[1], d.Rank[2], d.Rank[3], d.Rank[4])
	}
	fmt.Fprintln(w)
}

// WritePRTable prints success/precision/recall rows in the format of
// Tables 14 and 15.
func WritePRTable(w io.Writer, title string, dists []Dist) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-8s %8s %10s %7s\n", "Heuristic", "Success", "Precision", "Recall")
	for _, d := range dists {
		fmt.Fprintf(w, "%-8s %8.2f %10.2f %7.2f\n", d.Name, d.Success, d.Precision, d.Recall)
	}
	fmt.Fprintln(w)
}

// WriteComboTable prints the 26-combination sweep in the three-column
// format of Table 11, sorted ascending by success as the paper lists it.
func WriteComboTable(w io.Writer, title string, dists []Dist) {
	fmt.Fprintf(w, "%s\n", title)
	sorted := make([]Dist, len(dists))
	copy(sorted, dists)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Success < sorted[j].Success })
	fmt.Fprintf(w, "%-7s %7s    %-7s %7s    %-7s %7s\n",
		"Combo", "Success", "Combo", "Success", "Combo", "Success")
	for i := 0; i < len(sorted); i += 3 {
		for j := i; j < i+3 && j < len(sorted); j++ {
			fmt.Fprintf(w, "%-7s %7.2f    ", sorted[j].Name, sorted[j].Success)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// WriteTimingTable prints timing rows in the format of Tables 16/17.
func WriteTimingTable(w io.Writer, title string, withDiscovery bool, rows []TimingRow) {
	fmt.Fprintf(w, "%s\n", title)
	if withDiscovery {
		fmt.Fprintf(w, "%-14s %8s %8s %8s %9s %8s %9s %8s\n",
			"Web Site", "Read", "Parse", "Subtree", "Separator", "Combine", "Construct", "Total")
		for _, r := range rows {
			fmt.Fprintf(w, "%-14s %8.2f %8.2f %8.2f %9.2f %8.2f %9.2f %8.2f\n",
				r.Label, r.ReadFile, r.Parse, r.Subtree, r.Separator, r.Combine, r.Construct, r.Total)
		}
	} else {
		fmt.Fprintf(w, "%-14s %8s %8s %8s %9s %8s\n",
			"Web Site", "Read", "Parse", "Subtree", "Construct", "Total")
		for _, r := range rows {
			fmt.Fprintf(w, "%-14s %8.2f %8.2f %8.2f %9.2f %8.2f\n",
				r.Label, r.ReadFile, r.Parse, r.Subtree, r.Construct, r.Total)
		}
	}
	fmt.Fprintf(w, "(milliseconds per page)\n\n")
}

// WriteSubtreeTable prints subtree-heuristic rows.
func WriteSubtreeTable(w io.Writer, title string, dists []SubtreeDist) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-9s %7s %6s %6s %6s %6s\n", "Heuristic", "Rank 1", "2", "3", "4", "5")
	for _, d := range dists {
		fmt.Fprintf(w, "%-9s %7.2f %6.2f %6.2f %6.2f %6.2f\n",
			d.Name, d.Rank[0], d.Rank[1], d.Rank[2], d.Rank[3], d.Rank[4])
	}
	fmt.Fprintln(w)
}

// WriteSiteBreakdown prints per-site success for each heuristic plus the
// combined algorithm — the diagnostic view behind the paper's per-site
// averaging methodology ("for each web site we calculate the percentage of
// the downloaded pages in which the highest ranked tag is the correct
// separator").
func WriteSiteBreakdown(w io.Writer, title string, sites []PreparedSite, names []string, combined map[string]float64) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-30s", "Site")
	for _, name := range names {
		fmt.Fprintf(w, " %6s", name)
	}
	fmt.Fprintf(w, " %6s\n", "RSIPB")
	for _, site := range sites {
		one := []PreparedSite{site}
		fmt.Fprintf(w, "%-30s", site.Site)
		for _, name := range names {
			fmt.Fprintf(w, " %6.2f", HeuristicDist(name, one).Success)
		}
		fmt.Fprintf(w, " %6.2f\n", combined[site.Site])
	}
	fmt.Fprintln(w)
}
