package eval

import (
	"strings"
	"testing"

	"omini/internal/combine"
	"omini/internal/core"
	"omini/internal/corpus"
	"omini/internal/extract"
	"omini/internal/separator"
	"omini/internal/sitegen"
	"omini/internal/tagtree"
)

// smallCorpus returns a corpus small enough for unit tests.
func smallCorpus() *corpus.Corpus {
	return &corpus.Corpus{PagesPerSite: 6}
}

func allHeuristics() []separator.Heuristic {
	return append(separator.All(), separator.HC(), separator.IT())
}

func preparedTest(t *testing.T, c *corpus.Corpus) []PreparedSite {
	t.Helper()
	prepared, err := Prepare(c.TestSet(), allHeuristics())
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	return prepared
}

func TestPrepare(t *testing.T) {
	prepared := preparedTest(t, smallCorpus())
	if len(prepared) != 15 {
		t.Fatalf("prepared %d sites", len(prepared))
	}
	for _, site := range prepared {
		for _, p := range site.Pages {
			if p.Sub == nil {
				t.Fatalf("%s: nil subtree", p.Page.Name)
			}
			if len(p.Lists) != 7 {
				t.Fatalf("%s: %d heuristic lists", p.Page.Name, len(p.Lists))
			}
		}
	}
}

func TestDistributionsWellFormed(t *testing.T) {
	prepared := preparedTest(t, smallCorpus())
	for _, h := range allHeuristics() {
		d := HeuristicDist(h.Name(), prepared)
		total := 0.0
		for _, p := range d.Rank {
			if p < 0 || p > 1 {
				t.Errorf("%s: rank prob %v out of range", h.Name(), p)
			}
			total += p
		}
		if total > 1+1e-9 {
			t.Errorf("%s: rank probs sum to %v > 1", h.Name(), total)
		}
		if d.Success != d.Rank[0] || d.Recall != d.Success {
			t.Errorf("%s: success/recall inconsistent", h.Name())
		}
		if d.Precision < d.Success-1e-9 {
			t.Errorf("%s: precision %v below success %v", h.Name(), d.Precision, d.Success)
		}
	}
}

// The headline claim of the paper: the all-five combination beats every
// individual heuristic on every collection. Following the paper's
// methodology, the combination evidence is the rank-probability table
// measured on the test set (the paper's Table 10), not assumed.
func TestRSIPBBeatsEveryIndividualHeuristic(t *testing.T) {
	c := smallCorpus()
	prepared := preparedTest(t, c)
	table := MeasureProbs(prepared, allHeuristics())
	for _, set := range []struct {
		name      string
		sites     []corpus.SitePages
		tolerance float64
	}{
		{"test", c.TestSet(), 1e-9},
		// On the synthetic corpus IPS and PP stay near-perfect on the
		// validation and comparison collections (the paper's dipped to
		// 0.76-0.88), so the combination is allowed to tie them within a
		// small margin rather than strictly dominate; see EXPERIMENTS.md.
		{"experimental", c.ExperimentalSet(), 0.02},
		{"comparison", c.ComparisonSet(), 0.12},
	} {
		prep, err := Prepare(set.sites, allHeuristics())
		if err != nil {
			t.Fatal(err)
		}
		combined := CombinationDist(combine.RSIPB(), table, prep)
		for _, h := range separator.All() {
			d := HeuristicDist(h.Name(), prep)
			if combined.Success < d.Success-set.tolerance {
				t.Errorf("%s set: RSIPB %.3f below %s %.3f",
					set.name, combined.Success, h.Name(), d.Success)
			}
		}
		if combined.Success < 0.85 {
			t.Errorf("%s set: RSIPB success %.3f below 0.85", set.name, combined.Success)
		}
	}
}

// Section 6.7's claim: Omini's combination beats BYU's HTRS, decisively on
// the comparison sites.
func TestOminiBeatsBYU(t *testing.T) {
	c := smallCorpus()
	table := MeasureProbs(preparedTest(t, c), allHeuristics())
	prepared, err := Prepare(c.ComparisonSet(), allHeuristics())
	if err != nil {
		t.Fatal(err)
	}
	omini := CombinationDist(combine.RSIPB(), table, prepared)
	byu := CombinationDist(combine.HTRS(), table, prepared)
	if omini.Success <= byu.Success {
		t.Errorf("RSIPB %.3f not above HTRS %.3f on comparison sites",
			omini.Success, byu.Success)
	}
	if byu.Success > 0.80 {
		t.Errorf("HTRS %.3f too strong on comparison sites (paper: 0.59)", byu.Success)
	}
	// HC and IT individually collapse on these sites (Table 19: 19-40%).
	for _, name := range []string{"HC", "IT"} {
		if d := HeuristicDist(name, prepared); d.Success > 0.5 {
			t.Errorf("%s success %.3f on comparison sites, expected collapse", name, d.Success)
		}
	}
}

func TestMeasureProbs(t *testing.T) {
	prepared := preparedTest(t, smallCorpus())
	table := MeasureProbs(prepared, allHeuristics())
	if len(table) != 7 {
		t.Fatalf("table has %d heuristics", len(table))
	}
	for name, probs := range table {
		if len(probs) != MaxRank {
			t.Errorf("%s: %d probs", name, len(probs))
		}
		if probs[0] <= 0 || probs[0] > 1 {
			t.Errorf("%s: rank-1 prob %v", name, probs[0])
		}
	}
	// Measured probabilities should combine at least as well as a no-op:
	// the sweep must still rank RSIPB at or near the top.
	sweep := SweepCombinations(separator.All(), table, prepared)
	if len(sweep) != 26 {
		t.Fatalf("sweep has %d combinations, want 26", len(sweep))
	}
	best := sweep[0]
	for _, d := range sweep {
		if d.Success > best.Success {
			best = d
		}
	}
	rsipb := sweep[len(sweep)-1] // all-five is enumerated last
	if rsipb.Name != "RSIPB" {
		t.Fatalf("last combination = %s", rsipb.Name)
	}
	if rsipb.Success < best.Success-0.02 {
		t.Errorf("RSIPB %.3f more than 2pp below best combination %s %.3f",
			rsipb.Success, best.Name, best.Success)
	}
}

func TestCorrectRank(t *testing.T) {
	truth := sitegen.Truth{Separators: []string{"hr", "pre"}}
	if got := correctRank([]string{"a", "hr"}, truth); got != 2 {
		t.Errorf("rank = %d, want 2", got)
	}
	if got := correctRank([]string{"a", "b"}, truth); got != 0 {
		t.Errorf("rank = %d, want 0", got)
	}
	if got := correctRank(nil, truth); got != 0 {
		t.Errorf("rank = %d, want 0", got)
	}
}

func TestSubtreeSweep(t *testing.T) {
	c := smallCorpus()
	dists, err := SubtreeSweep(c.TestSet())
	if err != nil {
		t.Fatal(err)
	}
	if len(dists) != 4 {
		t.Fatalf("got %d subtree heuristics", len(dists))
	}
	byName := make(map[string]SubtreeDist, len(dists))
	for _, d := range dists {
		byName[d.Name] = d
	}
	// The compound algorithm must beat HF (whose nav-menu failure the
	// corpus reproduces) and be competitive overall.
	if byName["Compound"].Success <= byName["HF"].Success {
		t.Errorf("Compound %.3f not above HF %.3f",
			byName["Compound"].Success, byName["HF"].Success)
	}
	if byName["Compound"].Success < 0.6 {
		t.Errorf("Compound subtree success %.3f too low", byName["Compound"].Success)
	}
}

func TestMeasureTimingFullAndRules(t *testing.T) {
	c := &corpus.Corpus{PagesPerSite: 3}
	full, err := MeasureTiming("test", c.TestSet(), TimingOptions{Repeats: 1})
	if err != nil {
		t.Fatalf("MeasureTiming: %v", err)
	}
	if full.Pages != 45 {
		t.Errorf("pages = %d, want 45", full.Pages)
	}
	if full.Total <= 0 || full.Parse <= 0 || full.Separator <= 0 {
		t.Errorf("timing row not populated: %+v", full)
	}
	fast, err := MeasureTiming("test", c.TestSet(), TimingOptions{Repeats: 1, UseRules: true})
	if err != nil {
		t.Fatalf("MeasureTiming rules: %v", err)
	}
	if fast.Separator != 0 || fast.Combine != 0 {
		t.Errorf("rule path measured separator discovery: %+v", fast)
	}
	// The paper's Table 16/17 claim: subtree+separator+construction is an
	// order of magnitude faster with cached rules.
	discoveryFull := full.Subtree + full.Separator + full.Combine + full.Construct
	discoveryFast := fast.Subtree + fast.Construct
	if discoveryFast >= discoveryFull {
		t.Errorf("cached rules not faster: %.3fms vs %.3fms", discoveryFast, discoveryFull)
	}
}

func TestCombineRows(t *testing.T) {
	a := TimingRow{Label: "a", ReadFile: 2, Total: 10, Pages: 10}
	b := TimingRow{Label: "b", ReadFile: 4, Total: 20, Pages: 30}
	c := CombineRows("combined", a, b)
	if c.Pages != 40 {
		t.Errorf("pages = %d", c.Pages)
	}
	if c.ReadFile != (2*10+4*30)/40.0 {
		t.Errorf("read = %v", c.ReadFile)
	}
	if c.Total != (10*10+20*30)/40.0 {
		t.Errorf("total = %v", c.Total)
	}
}

func TestReportWriters(t *testing.T) {
	prepared := preparedTest(t, &corpus.Corpus{PagesPerSite: 2})
	dists := []Dist{HeuristicDist("SD", prepared), HeuristicDist("PP", prepared)}
	var sb strings.Builder
	WriteDistTable(&sb, "Table 10", dists)
	WritePRTable(&sb, "Table 14", dists)
	WriteComboTable(&sb, "Table 11", dists)
	WriteTimingTable(&sb, "Table 16", true, []TimingRow{{Label: "Test", Total: 1}})
	WriteTimingTable(&sb, "Table 17", false, []TimingRow{{Label: "Test", Total: 1}})
	WriteSubtreeTable(&sb, "Subtrees", []SubtreeDist{{Name: "HF"}})
	out := sb.String()
	for _, want := range []string{"Table 10", "SD", "PP", "Precision", "Combo", "Read", "milliseconds", "HF"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// The abstract's headline: high object-level precision with recall in the
// 93-98% band, end to end (own subtree discovery, no ground-truth hints).
func TestObjectLevelPrecisionRecall(t *testing.T) {
	c := &corpus.Corpus{PagesPerSite: 5}
	for _, set := range []struct {
		name  string
		sites []corpus.SitePages
	}{
		{"test", c.TestSet()},
		{"experimental", c.ExperimentalSet()},
	} {
		pr := MeasureObjectPR(set.name, set.sites, core.Options{})
		if pr.Failed > 0 {
			t.Errorf("%s: %d/%d pages failed to extract", set.name, pr.Failed, pr.Pages)
		}
		if pr.Precision < 0.90 {
			t.Errorf("%s: object precision %.3f below 0.90", set.name, pr.Precision)
		}
		if pr.Recall < 0.88 {
			t.Errorf("%s: object recall %.3f below 0.88 (paper band 0.93-0.98)", set.name, pr.Recall)
		}
	}
}

func TestScoreObjects(t *testing.T) {
	page := sitegen.Canoe()
	root, err := tagtree.Parse(page.HTML)
	if err != nil {
		t.Fatal(err)
	}
	sub := tagtree.FindPath(root, page.Truth.SubtreePath)
	objects := extract.Refine(extract.Construct(sub, "table"), extract.RefineOptions{})
	p, r := scoreObjects(objects, page.Truth.ObjectTitles)
	if p != 1 || r != 1 {
		t.Errorf("canoe replica p=%v r=%v, want 1/1", p, r)
	}
	// Degenerate inputs.
	if p, r := scoreObjects(nil, page.Truth.ObjectTitles); p != 0 || r != 0 {
		t.Errorf("empty objects p=%v r=%v", p, r)
	}
	if p, r := scoreObjects(objects, nil); p != 0 || r != 0 {
		t.Errorf("empty titles p=%v r=%v", p, r)
	}
	// A merged object containing two titles is not a true positive.
	merged := extract.Object{Nodes: sub.Children}
	p, _ = scoreObjects([]extract.Object{merged}, page.Truth.ObjectTitles)
	if p != 0 {
		t.Errorf("merged object counted as correct: p=%v", p)
	}
}

func TestWriteSiteBreakdown(t *testing.T) {
	prepared := preparedTest(t, &corpus.Corpus{PagesPerSite: 2})
	combined := map[string]float64{prepared[0].Site: 1}
	var sb strings.Builder
	WriteSiteBreakdown(&sb, "Per-site", prepared[:2], []string{"SD", "PP"}, combined)
	out := sb.String()
	if !strings.Contains(out, prepared[0].Site) || !strings.Contains(out, "RSIPB") {
		t.Errorf("breakdown output:\n%s", out)
	}
}

// Confidence must be informative: extractions in the top confidence bucket
// are correct more often than those in the bottom one.
func TestConfidenceCalibration(t *testing.T) {
	c := &corpus.Corpus{PagesPerSite: 6}
	sites := append(c.TestSet(), c.ComparisonSet()...)
	buckets := ConfidenceCalibration(sites, nil)
	if len(buckets) != 4 {
		t.Fatalf("got %d buckets", len(buckets))
	}
	total := 0
	for _, b := range buckets {
		total += b.Pages
	}
	if total == 0 {
		t.Fatal("no pages bucketed")
	}
	top := buckets[len(buckets)-1]
	if top.Pages == 0 {
		t.Fatal("no high-confidence extractions at all")
	}
	// Find the lowest populated bucket below the top.
	for _, b := range buckets[:len(buckets)-1] {
		if b.Pages == 0 {
			continue
		}
		if top.Accuracy < b.Accuracy {
			t.Errorf("top bucket accuracy %.3f below bucket [%.2f,%.2f) accuracy %.3f",
				top.Accuracy, b.Lo, b.Hi, b.Accuracy)
		}
		break
	}
	if top.Accuracy < 0.9 {
		t.Errorf("top-bucket accuracy = %.3f, want >= 0.9", top.Accuracy)
	}
}
