package eval

import (
	"omini/internal/corpus"
	"omini/internal/subtree"
	"omini/internal/tagtree"
)

// SubtreeDist is one row of the subtree-heuristic evaluation: how often a
// heuristic's rank-k subtree is the ground-truth minimal object-rich
// subtree. The paper runs this comparison qualitatively (Table 1) and
// defers the numbers to its technical report; this experiment fills the
// gap and doubles as the ablation for the compound algorithm.
type SubtreeDist struct {
	Name    string
	Rank    [MaxRank]float64
	Success float64
}

// SubtreeHeuristicDist scores a subtree heuristic over a page collection,
// averaging per-site as the separator evaluation does.
func SubtreeHeuristicDist(h subtree.Heuristic, sites []corpus.SitePages) (SubtreeDist, error) {
	d := SubtreeDist{Name: h.Name()}
	var rankSum [MaxRank]float64
	nSites := 0
	for _, sp := range sites {
		if len(sp.Pages) == 0 {
			continue
		}
		nSites++
		var hist [MaxRank]int
		for _, page := range sp.Pages {
			root, err := tagtree.Parse(page.HTML)
			if err != nil {
				return d, err
			}
			ranked := h.Rank(root)
			limit := MaxRank
			if len(ranked) < limit {
				limit = len(ranked)
			}
			for k := 0; k < limit; k++ {
				if tagtree.Path(ranked[k].Node) == page.Truth.SubtreePath {
					hist[k]++
					break
				}
			}
		}
		pages := float64(len(sp.Pages))
		for k := 0; k < MaxRank; k++ {
			rankSum[k] += float64(hist[k]) / pages
		}
	}
	if nSites > 0 {
		for k := 0; k < MaxRank; k++ {
			d.Rank[k] = rankSum[k] / float64(nSites)
		}
	}
	d.Success = d.Rank[0]
	return d, nil
}

// SubtreeSweep evaluates HF, GSI, LTC and the compound algorithm over the
// collection.
func SubtreeSweep(sites []corpus.SitePages) ([]SubtreeDist, error) {
	heuristics := []subtree.Heuristic{
		subtree.HF(), subtree.GSI(), subtree.LTC(), subtree.Compound(),
	}
	out := make([]SubtreeDist, 0, len(heuristics))
	for _, h := range heuristics {
		d, err := SubtreeHeuristicDist(h, sites)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}
