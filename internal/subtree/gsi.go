package subtree

import (
	"omini/internal/govern"
	"omini/internal/tagtree"
)

// gsi is the Greatest Size Increase heuristic of Section 4.2: rank subtrees
// by the increase from the average child size to the subtree size, i.e.
// nodeSize(u) - nodeSize(u)/fanout(u). A subtree holding a whole result set
// is much larger than each of its per-object children, so its size increase
// dwarfs that of navigation menus made of short links.
type gsi struct{}

// GSI returns the greatest size increase subtree heuristic.
func GSI() Heuristic { return gsi{} }

func (gsi) Name() string { return "GSI" }

func (h gsi) Rank(root *tagtree.Node) []Ranked {
	out, _ := h.rankGoverned(root, nil)
	return out
}

func (gsi) rankGoverned(root *tagtree.Node, g *govern.Guard) ([]Ranked, error) {
	return rankCandidates(root, sizeIncrease, g)
}

// sizeIncrease computes the GSI score of one node: the node size minus the
// average size of its children ("dividing the node size by the node fanout
// and subtracting the result from the original node size").
func sizeIncrease(n *tagtree.Node) float64 {
	fanout := n.Fanout()
	if fanout == 0 {
		return 0
	}
	size := float64(n.NodeSize())
	return size - size/float64(fanout)
}
