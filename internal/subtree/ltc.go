package subtree

import (
	"omini/internal/govern"
	"omini/internal/tagtree"
)

// ltcReexamineWindow bounds the LTC re-ranking pass. Only the head of the
// ranked list can ever be chosen, so re-examining the whole list (quadratic
// in page size) buys nothing; the paper's examples involve swaps within the
// top handful of subtrees.
const ltcReexamineWindow = 64

// ltc is the Largest Tag Count heuristic of Section 4.3: more tags in a
// subtree make it likelier to contain the data objects. Because an ancestor
// always out-counts its descendants, ranked subtrees in an ancestor
// relationship are re-examined: the one whose *child tag* has the higher
// appearance count wins (13 table children under form beat 2 form children
// under body, in the paper's canoe.com example).
type ltc struct {
	window int
}

// LTC returns the largest tag count subtree heuristic.
func LTC() Heuristic { return ltc{window: ltcReexamineWindow} }

func (ltc) Name() string { return "LTC" }

func (h ltc) Rank(root *tagtree.Node) []Ranked {
	out, _ := h.rankGoverned(root, nil)
	return out
}

func (h ltc) rankGoverned(root *tagtree.Node, g *govern.Guard) ([]Ranked, error) {
	entries, err := rankCandidates(root, func(n *tagtree.Node) float64 {
		return float64(n.TagCount())
	}, g)
	if err != nil {
		return nil, err
	}

	// Step 2: walk down the ranked list and re-examine ancestor pairs.
	// When a higher-ranked subtree T_i is in an ancestor relationship with
	// a lower-ranked T_j and T_j's highest child-tag appearance count
	// exceeds T_i's, the two exchange ranking positions.
	window := h.window
	if window <= 0 || window > len(entries) {
		window = len(entries)
	}
	maxChild := make(map[*tagtree.Node]int, window)
	countOf := func(n *tagtree.Node) int {
		if c, ok := maxChild[n]; ok {
			return c
		}
		_, c := n.MaxChildTagCount()
		maxChild[n] = c
		return c
	}
	for i := 0; i < window; i++ {
		for j := i + 1; j < window; j++ {
			g.Poll()
			a, b := entries[i].Node, entries[j].Node
			if !a.IsAncestorOf(b) && !b.IsAncestorOf(a) {
				continue
			}
			// The re-examination corrects for ancestor inflation: an
			// ancestor always out-counts its descendants, so when the
			// descendant holds the bulk of the ancestor's tags the child
			// appearance counts decide instead (13 tables under form[4]
			// beat 2 forms under body). A small descendant — a navigation
			// menu with many links deep inside the region — must not win
			// on child counts alone, so re-ranking applies only between
			// subtrees of comparable tag count.
			desc := b
			if b.IsAncestorOf(a) {
				desc = a
			}
			anc := a
			if desc == a {
				anc = b
			}
			if desc.TagCount()*2 < anc.TagCount() {
				continue
			}
			if countOf(b) > countOf(a) {
				entries[i], entries[j] = entries[j], entries[i]
				// Re-examine the new occupant of position i against the
				// remainder of the list, per the paper's walk-down loop.
				j = i
			}
		}
	}
	return entries, nil
}
