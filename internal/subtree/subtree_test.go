package subtree

import (
	"fmt"
	"strings"
	"testing"

	"omini/internal/tagtree"
)

// chromePage builds a page in the shape that defeats HF (Section 4.1's
// failure mode): a navigation menu with navLinks bare links, then a result
// region with items objects, each carrying several tags and realText bytes
// of content.
func chromePage(navLinks, items int) string {
	var b strings.Builder
	b.WriteString(`<html><head><title>search</title></head><body>`)
	b.WriteString(`<div>`)
	for i := 0; i < navLinks; i++ {
		fmt.Fprintf(&b, `<a href="/nav%d">n%d</a>`, i, i)
	}
	b.WriteString(`</div><form>`)
	for i := 0; i < items; i++ {
		fmt.Fprintf(&b, `<table><tr><td><font><b><a href="/item%d">Result item %d</a></b>`+
			`<br>A reasonably long description of result %d with plenty of text to weigh the subtree.`+
			`</font></td></tr></table>`, i, i, i)
	}
	b.WriteString(`</form></body></html>`)
	return b.String()
}

func parse(t *testing.T, src string) *tagtree.Node {
	t.Helper()
	root, err := tagtree.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return root
}

// nodeByTag returns the unique node with the given tag.
func nodeByTag(t *testing.T, root *tagtree.Node, tag string) *tagtree.Node {
	t.Helper()
	nodes := root.FindAll(tag)
	if len(nodes) != 1 {
		t.Fatalf("found %d %q nodes, want 1", len(nodes), tag)
	}
	return nodes[0]
}

func TestHFRanksByFanout(t *testing.T) {
	root := parse(t, chromePage(30, 12))
	ranked := HF().Rank(root)
	if len(ranked) == 0 {
		t.Fatal("empty ranking")
	}
	nav := nodeByTag(t, root, "div")
	if ranked[0].Node != nav {
		t.Errorf("HF top = %s, want the 30-link nav div (HF's documented failure)",
			tagtree.Path(ranked[0].Node))
	}
	if ranked[0].Score != 30 {
		t.Errorf("HF score = %v, want 30", ranked[0].Score)
	}
}

func TestGSIPrefersContentRegion(t *testing.T) {
	root := parse(t, chromePage(30, 12))
	form := nodeByTag(t, root, "form")
	ranked := GSI().Rank(root)
	if ranked[0].Node != form {
		t.Errorf("GSI top = %s, want form", tagtree.Path(ranked[0].Node))
	}
}

func TestLTCPrefersContentRegion(t *testing.T) {
	root := parse(t, chromePage(30, 12))
	form := nodeByTag(t, root, "form")
	ranked := LTC().Rank(root)
	if ranked[0].Node != form {
		t.Errorf("LTC top = %s, want form", tagtree.Path(ranked[0].Node))
	}
}

func TestCompoundPrefersContentRegion(t *testing.T) {
	root := parse(t, chromePage(30, 12))
	form := nodeByTag(t, root, "form")
	if got := Extract(root); got != form {
		t.Errorf("Extract = %s, want form", tagtree.Path(got))
	}
}

func TestGSIScoreFormula(t *testing.T) {
	// A node of size 120 with fanout 3 has size increase 120 - 120/3 = 80.
	root := parse(t, `<html><body>`+
		`<p>`+strings.Repeat("a", 40)+`</p>`+
		`<p>`+strings.Repeat("b", 40)+`</p>`+
		`<p>`+strings.Repeat("c", 40)+`</p>`+
		`</body></html>`)
	body := nodeByTag(t, root, "body")
	if got := sizeIncrease(body); got != 80 {
		t.Errorf("sizeIncrease(body) = %v, want 80", got)
	}
	leafP := root.FindAll("p")[0].Children[0]
	if got := sizeIncrease(leafP); got != 0 {
		t.Errorf("sizeIncrease(content) = %v, want 0", got)
	}
}

func TestLTCAncestorReRanking(t *testing.T) {
	// body has 2 child forms; the second form has 5 child tables. The body
	// subtree out-counts the form on raw tags, but the form's highest child
	// appearance count (5 tables) beats body's (2 forms), so LTC must rank
	// the form first — the Section 4.3 re-examination.
	var b strings.Builder
	b.WriteString(`<html><body><form><input></form><form>`)
	for i := 0; i < 5; i++ {
		fmt.Fprintf(&b, `<table><tr><td>item %d text body</td></tr></table>`, i)
	}
	b.WriteString(`</form></body></html>`)
	root := parse(t, b.String())
	forms := root.FindAll("form")
	ranked := LTC().Rank(root)
	if ranked[0].Node != forms[1] {
		t.Errorf("LTC top = %s, want the 5-table form", tagtree.Path(ranked[0].Node))
	}
}

func TestRankingsAreDeterministic(t *testing.T) {
	root := parse(t, chromePage(10, 6))
	for _, h := range []Heuristic{HF(), GSI(), LTC(), Compound()} {
		first := h.Rank(root)
		for i := 0; i < 3; i++ {
			again := h.Rank(root)
			if len(first) != len(again) {
				t.Fatalf("%s: ranking length changed", h.Name())
			}
			for j := range first {
				if first[j].Node != again[j].Node {
					t.Fatalf("%s: rank %d differs between runs", h.Name(), j)
				}
			}
		}
	}
}

func TestRankedScoresMonotone(t *testing.T) {
	root := parse(t, chromePage(20, 8))
	// Compound is excluded: its minimality pass deliberately promotes a
	// descendant above a slightly higher-volume ancestor.
	for _, h := range []Heuristic{HF(), GSI()} {
		ranked := h.Rank(root)
		for i := 1; i < len(ranked); i++ {
			if ranked[i].Score > ranked[i-1].Score {
				t.Errorf("%s: score increases at rank %d (%v > %v)",
					h.Name(), i, ranked[i].Score, ranked[i-1].Score)
			}
		}
	}
}

func TestCandidatesExcludeLeavesAndContent(t *testing.T) {
	root := parse(t, `<html><body><p>text</p><br></body></html>`)
	for _, c := range candidates(root) {
		if c.IsContent() {
			t.Error("content node among candidates")
		}
		if c.Fanout() == 0 {
			t.Errorf("childless node %s among candidates", tagtree.Path(c))
		}
	}
}

func TestTopHelper(t *testing.T) {
	root := parse(t, chromePage(5, 5))
	ranked := HF().Rank(root)
	if got := Top(ranked, 3); len(got) != 3 {
		t.Errorf("Top(3) returned %d", len(got))
	}
	if got := Top(ranked[:2], 5); len(got) != 2 {
		t.Errorf("Top beyond length returned %d", len(got))
	}
}

func TestExtractOnTinyDocument(t *testing.T) {
	root := parse(t, `<html><body>x</body></html>`)
	got := Extract(root)
	if got == nil {
		t.Fatal("Extract returned nil")
	}
	if got.IsContent() {
		t.Error("Extract returned a content node")
	}
}

func TestHeuristicNames(t *testing.T) {
	names := map[string]Heuristic{
		"HF": HF(), "GSI": GSI(), "LTC": LTC(), "Compound": Compound(),
	}
	for want, h := range names {
		if h.Name() != want {
			t.Errorf("Name() = %q, want %q", h.Name(), want)
		}
	}
}

// Ties in every heuristic must prefer the deeper (minimal) subtree.
func TestTieBreakPrefersMinimalSubtree(t *testing.T) {
	// div > ul > 3 li; div has only ul as child, so fanout(div)=1,
	// fanout(ul)=3. For GSI, div and ul have the same size but different
	// fanout; craft equal scores via a wrapper chain for HF instead:
	// both section and ul here have fanout 1 and 3 — use nested singles.
	root := parse(t, `<html><body><div><div><ul><li>aaaa</li><li>bbbb</li><li>cccc</li></ul></div></div></body></html>`)
	ul := nodeByTag(t, root, "ul")
	ranked := GSI().Rank(root)
	// outer div, inner div and ul all have nodeSize 12; ul has the larger
	// size increase (12-4=8 vs 12-12=0), so ul must be first.
	if ranked[0].Node != ul {
		t.Errorf("GSI top = %s, want ul", tagtree.Path(ranked[0].Node))
	}
}
