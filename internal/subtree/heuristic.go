// Package subtree implements the object-rich subtree extraction heuristics
// of the paper's Section 4: HF (highest fan-out), GSI (greatest size
// increase), LTC (largest tag count), and the compound multi-dimensional
// volume algorithm that combines them. Given the tag tree of a page, each
// heuristic ranks candidate subtrees; the top-ranked subtree is taken as the
// minimal subtree containing all objects of interest.
package subtree

import (
	"sort"

	"omini/internal/tagtree"
)

// Ranked is one entry of a heuristic's ranked subtree list.
type Ranked struct {
	// Node anchors the ranked subtree.
	Node *tagtree.Node
	// Score is the heuristic's figure of merit; higher ranks first.
	Score float64
}

// Heuristic ranks the subtrees of a document, best candidate first.
type Heuristic interface {
	// Name returns the short name used in reports ("HF", "GSI", ...).
	Name() string
	// Rank returns candidate subtrees in descending order of merit.
	Rank(root *tagtree.Node) []Ranked
}

// Extract runs the default (compound) heuristic and returns the top-ranked
// object-rich subtree, or root itself when the document offers no better
// candidate.
func Extract(root *tagtree.Node) *tagtree.Node {
	ranked := Compound().Rank(root)
	if len(ranked) == 0 {
		return root
	}
	return ranked[0].Node
}

// candidates returns the subtree anchors a heuristic considers: every tag
// node with at least one child. Content nodes anchor no subtree, and a
// childless tag cannot contain multiple objects.
func candidates(root *tagtree.Node) []*tagtree.Node {
	var out []*tagtree.Node
	root.Walk(func(n *tagtree.Node) bool {
		if !n.IsContent() && n.Fanout() > 0 {
			out = append(out, n)
		}
		return true
	})
	return out
}

// order maps nodes to their document-order position for stable tie-breaks.
func order(nodes []*tagtree.Node) map[*tagtree.Node]int {
	m := make(map[*tagtree.Node]int, len(nodes))
	for i, n := range nodes {
		m[n] = i
	}
	return m
}

// sortRanked sorts entries by descending score. Ties prefer the deeper node
// (the *minimal* subtree with the property, per Definition 4) and then
// document order, so rankings are deterministic.
func sortRanked(entries []Ranked, pos map[*tagtree.Node]int) {
	sort.SliceStable(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		da, db := a.Node.Depth(), b.Node.Depth()
		if da != db {
			return da > db
		}
		return pos[a.Node] < pos[b.Node]
	})
}

// Top returns the first n entries of a ranked list (or fewer).
func Top(ranked []Ranked, n int) []Ranked {
	if len(ranked) < n {
		return ranked
	}
	return ranked[:n]
}
