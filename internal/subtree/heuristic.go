// Package subtree implements the object-rich subtree extraction heuristics
// of the paper's Section 4: HF (highest fan-out), GSI (greatest size
// increase), LTC (largest tag count), and the compound multi-dimensional
// volume algorithm that combines them. Given the tag tree of a page, each
// heuristic ranks candidate subtrees; the top-ranked subtree is taken as the
// minimal subtree containing all objects of interest.
package subtree

import (
	"sort"

	"omini/internal/govern"
	"omini/internal/tagtree"
)

// Ranked is one entry of a heuristic's ranked subtree list.
type Ranked struct {
	// Node anchors the ranked subtree.
	Node *tagtree.Node
	// Score is the heuristic's figure of merit; higher ranks first.
	Score float64
}

// Heuristic ranks the subtrees of a document, best candidate first.
type Heuristic interface {
	// Name returns the short name used in reports ("HF", "GSI", ...).
	Name() string
	// Rank returns candidate subtrees in descending order of merit.
	Rank(root *tagtree.Node) []Ranked
}

// Extract runs the default (compound) heuristic and returns the top-ranked
// object-rich subtree, or root itself when the document offers no better
// candidate.
func Extract(root *tagtree.Node) *tagtree.Node {
	ranked := Compound().Rank(root)
	if len(ranked) == 0 {
		return root
	}
	return ranked[0].Node
}

// candidates returns the subtree anchors a heuristic considers: every tag
// node with at least one child. Content nodes anchor no subtree, and a
// childless tag cannot contain multiple objects.
func candidates(root *tagtree.Node) []*tagtree.Node {
	cl, _ := collectCandidates(root, nil)
	return cl.nodes
}

// governedRanker is the internal fast path of RankGoverned: the built-in
// heuristics rank under a guard natively, threading cancellation polls
// through their candidate walks.
type governedRanker interface {
	rankGoverned(root *tagtree.Node, g *govern.Guard) ([]Ranked, error)
}

// RankGoverned ranks with h under a resource guard: the candidate walk
// polls the page context, so a cancelled or out-of-time page stops
// mid-walk instead of ranking to completion. The built-in heuristics
// (HF, GSI, LTC, Compound) cooperate natively; a custom Heuristic runs
// ungoverned and only the context is checked after the fact. A nil
// guard makes it equivalent to h.Rank.
func RankGoverned(h Heuristic, root *tagtree.Node, g *govern.Guard) ([]Ranked, error) {
	if gr, ok := h.(governedRanker); ok {
		return gr.rankGoverned(root, g)
	}
	out := h.Rank(root)
	if err := g.Check(); err != nil {
		return nil, err
	}
	return out, nil
}

// candList holds the candidate anchors of one ranking pass in document
// order, with each anchor's depth (relative to the ranked root) precomputed
// so sorting needs no per-comparison tree walks.
type candList struct {
	nodes  []*tagtree.Node
	depths []int
}

// collectCandidates gathers the candidate anchors and their depths in one
// walk. Depths are relative to root; tie-breaks only compare depths, so the
// constant offset to absolute depth is irrelevant. The guard is polled
// once per visited node, so a cancelled page abandons the walk.
func collectCandidates(root *tagtree.Node, g *govern.Guard) (candList, error) {
	est := root.TagCount()/4 + 4
	cl := candList{
		nodes:  make([]*tagtree.Node, 0, est),
		depths: make([]int, 0, est),
	}
	var err error
	var walk func(n *tagtree.Node, depth int)
	walk = func(n *tagtree.Node, depth int) {
		if err != nil || n.IsContent() {
			return
		}
		if err = g.Poll(); err != nil {
			return
		}
		if n.Fanout() > 0 {
			cl.nodes = append(cl.nodes, n)
			cl.depths = append(cl.depths, depth)
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)
	if err != nil {
		return candList{}, err
	}
	return cl, nil
}

// rankCandidates scores every candidate anchor under root and returns the
// ranking in descending score order. Ties prefer the deeper node (the
// *minimal* subtree with the property, per Definition 4) and then document
// order, so rankings are deterministic. The tree is walked once; sorting
// works on a precomputed index with no maps and no Depth() traversals.
func rankCandidates(root *tagtree.Node, score func(*tagtree.Node) float64, g *govern.Guard) ([]Ranked, error) {
	cl, err := collectCandidates(root, g)
	if err != nil {
		return nil, err
	}
	entries := make([]Ranked, len(cl.nodes))
	idx := make([]int, len(cl.nodes))
	for i, n := range cl.nodes {
		g.Poll()
		entries[i] = Ranked{Node: n, Score: score(n)}
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		i, j := idx[a], idx[b]
		if entries[i].Score != entries[j].Score {
			return entries[i].Score > entries[j].Score
		}
		if cl.depths[i] != cl.depths[j] {
			return cl.depths[i] > cl.depths[j]
		}
		return i < j
	})
	out := make([]Ranked, len(entries))
	for k, i := range idx {
		g.Poll()
		out[k] = entries[i]
	}
	return out, nil
}

// Top returns the first n entries of a ranked list (or fewer).
func Top(ranked []Ranked, n int) []Ranked {
	if len(ranked) < n {
		return ranked
	}
	return ranked[:n]
}
