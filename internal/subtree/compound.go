package subtree

import (
	"omini/internal/govern"
	"omini/internal/tagtree"
)

// compound is the combined subtree algorithm of Section 4.4: each individual
// metric (fanout, size increase, tag count) is one dimension of a
// multi-dimensional space, and subtrees are ranked by their volume in that
// space. Navigation menus (high fanout, tiny size) and single large blobs
// (big size, few tags) both collapse to small volumes; genuine object lists
// are large in all three dimensions at once.
type compound struct{}

// Compound returns the combined multi-dimensional volume heuristic. It is
// the subtree extractor the Omini pipeline uses by default.
func Compound() Heuristic { return compound{} }

func (compound) Name() string { return "Compound" }

// compoundWindow bounds the minimality re-ranking pass; only the head of
// the list can be chosen.
const compoundWindow = 16

// compoundMinimalityRatio is the content fraction at which a descendant
// displaces its ancestor: carrying 80% of the ancestor's content means the
// ancestor's lead is chrome, and Definition 4 wants the minimal subtree.
const compoundMinimalityRatio = 0.8

// compoundMinimalityFanout is the least fanout a promoted descendant needs:
// a region of one child cannot be the list of objects itself.
const compoundMinimalityFanout = 3

func (h compound) Rank(root *tagtree.Node) []Ranked {
	out, _ := h.rankGoverned(root, nil)
	return out
}

func (compound) rankGoverned(root *tagtree.Node, g *govern.Guard) ([]Ranked, error) {
	entries, err := rankCandidates(root, volume, g)
	if err != nil {
		return nil, err
	}

	// Minimality pass: an ancestor always accumulates at least its
	// descendant's size and tags, so a page whose chrome is light can rank
	// body just above the true object region. When a descendant holds
	// nearly all of a higher-ranked ancestor's volume, the descendant is
	// the minimal subtree with the property and takes the ancestor's
	// position.
	window := compoundWindow
	if window > len(entries) {
		window = len(entries)
	}
	for i := 0; i < window; i++ {
		for j := i + 1; j < window; j++ {
			g.Poll()
			anc, desc := entries[i].Node, entries[j].Node
			if !anc.IsAncestorOf(desc) {
				continue
			}
			holdsContent := float64(desc.NodeSize()) >=
				compoundMinimalityRatio*float64(anc.NodeSize())
			if holdsContent && desc.Fanout() >= compoundMinimalityFanout {
				entries[i], entries[j] = entries[j], entries[i]
				j = i
			}
		}
	}
	return entries, nil
}

// volume computes the multi-dimensional volume of one subtree. The size
// dimension is squared: fanout and tag count both reward link farms (a
// navigation menu has dozens of children and tags but little content),
// while size increase measures the content mass that distinguishes a
// result list from chrome — emphasizing it keeps a six-result page from
// losing its region to a thirty-link menu. Factors are shifted by +1 so a
// zero in one dimension does not erase the others.
func volume(n *tagtree.Node) float64 {
	size := sizeIncrease(n) + 1
	return float64(n.Fanout()) * size * size * float64(n.TagCount())
}
