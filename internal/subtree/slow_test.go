package subtree

// Frozen reference implementations of the subtree heuristics, copied
// verbatim from the pre-optimization code (per-heuristic Walk scans, an
// order map and repeated Depth() calls in the sort). The differential tests
// in diff_test.go pin the optimized implementations to these on randomized
// trees; do not "improve" this file.

import (
	"sort"

	"omini/internal/tagtree"
)

func slowCandidates(root *tagtree.Node) []*tagtree.Node {
	var out []*tagtree.Node
	root.Walk(func(n *tagtree.Node) bool {
		if !n.IsContent() && n.Fanout() > 0 {
			out = append(out, n)
		}
		return true
	})
	return out
}

func slowOrder(nodes []*tagtree.Node) map[*tagtree.Node]int {
	m := make(map[*tagtree.Node]int, len(nodes))
	for i, n := range nodes {
		m[n] = i
	}
	return m
}

func slowSortRanked(entries []Ranked, pos map[*tagtree.Node]int) {
	sort.SliceStable(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		da, db := a.Node.Depth(), b.Node.Depth()
		if da != db {
			return da > db
		}
		return pos[a.Node] < pos[b.Node]
	})
}

func slowHFRank(root *tagtree.Node) []Ranked {
	cands := slowCandidates(root)
	entries := make([]Ranked, len(cands))
	for i, n := range cands {
		entries[i] = Ranked{Node: n, Score: float64(n.Fanout())}
	}
	slowSortRanked(entries, slowOrder(cands))
	return entries
}

func slowGSIRank(root *tagtree.Node) []Ranked {
	cands := slowCandidates(root)
	entries := make([]Ranked, len(cands))
	for i, n := range cands {
		entries[i] = Ranked{Node: n, Score: slowSizeIncrease(n)}
	}
	slowSortRanked(entries, slowOrder(cands))
	return entries
}

func slowSizeIncrease(n *tagtree.Node) float64 {
	fanout := n.Fanout()
	if fanout == 0 {
		return 0
	}
	size := float64(n.NodeSize())
	return size - size/float64(fanout)
}

func slowLTCRank(root *tagtree.Node) []Ranked {
	cands := slowCandidates(root)
	entries := make([]Ranked, len(cands))
	for i, n := range cands {
		entries[i] = Ranked{Node: n, Score: float64(n.TagCount())}
	}
	slowSortRanked(entries, slowOrder(cands))

	window := ltcReexamineWindow
	if window <= 0 || window > len(entries) {
		window = len(entries)
	}
	maxChild := make(map[*tagtree.Node]int, window)
	countOf := func(n *tagtree.Node) int {
		if c, ok := maxChild[n]; ok {
			return c
		}
		_, c := n.MaxChildTagCount()
		maxChild[n] = c
		return c
	}
	for i := 0; i < window; i++ {
		for j := i + 1; j < window; j++ {
			a, b := entries[i].Node, entries[j].Node
			if !a.IsAncestorOf(b) && !b.IsAncestorOf(a) {
				continue
			}
			desc := b
			if b.IsAncestorOf(a) {
				desc = a
			}
			anc := a
			if desc == a {
				anc = b
			}
			if desc.TagCount()*2 < anc.TagCount() {
				continue
			}
			if countOf(b) > countOf(a) {
				entries[i], entries[j] = entries[j], entries[i]
				j = i
			}
		}
	}
	return entries
}

func slowCompoundRank(root *tagtree.Node) []Ranked {
	cands := slowCandidates(root)
	entries := make([]Ranked, len(cands))
	for i, n := range cands {
		entries[i] = Ranked{Node: n, Score: slowVolume(n)}
	}
	slowSortRanked(entries, slowOrder(cands))

	window := compoundWindow
	if window > len(entries) {
		window = len(entries)
	}
	for i := 0; i < window; i++ {
		for j := i + 1; j < window; j++ {
			anc, desc := entries[i].Node, entries[j].Node
			if !anc.IsAncestorOf(desc) {
				continue
			}
			holdsContent := float64(desc.NodeSize()) >=
				compoundMinimalityRatio*float64(anc.NodeSize())
			if holdsContent && desc.Fanout() >= compoundMinimalityFanout {
				entries[i], entries[j] = entries[j], entries[i]
				j = i
			}
		}
	}
	return entries
}

func slowVolume(n *tagtree.Node) float64 {
	size := slowSizeIncrease(n) + 1
	return float64(n.Fanout()) * size * size * float64(n.TagCount())
}
