package subtree

import (
	"omini/internal/govern"
	"omini/internal/tagtree"
)

// hf is the Highest Fan-out heuristic of Section 4.1, adopted from Embley et
// al.: the subtree whose root has the most children should contain the
// records. It fails on chrome-heavy pages whose navigation menus out-fan the
// result list — which is exactly what GSI and LTC compensate for.
type hf struct{}

// HF returns the highest fan-out subtree heuristic.
func HF() Heuristic { return hf{} }

func (hf) Name() string { return "HF" }

func (h hf) Rank(root *tagtree.Node) []Ranked {
	out, _ := h.rankGoverned(root, nil)
	return out
}

func (hf) rankGoverned(root *tagtree.Node, g *govern.Guard) ([]Ranked, error) {
	return rankCandidates(root, func(n *tagtree.Node) float64 {
		return float64(n.Fanout())
	}, g)
}
