package subtree

// Differential tests: the optimized subtree heuristics must produce
// rankings identical (same nodes, same order, same scores) to the frozen
// slowXxx references in slow_test.go on randomized trees.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"omini/internal/tagtree"
)

// randPageHTML mirrors the separator package's randomized page generator:
// sloppy nested HTML over a list-heavy vocabulary.
func randPageHTML(rng *rand.Rand) string {
	tags := []string{
		"div", "table", "tr", "td", "ul", "li", "p", "b", "a", "span",
		"dl", "dt", "dd", "font", "blockquote", "form", "center",
	}
	words := []string{"alpha", "bravo", "charlie", "delta", "echo", "golf", "hotel"}
	var b strings.Builder
	b.WriteString("<html><body>")
	var emit func(depth int)
	emit = func(depth int) {
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			switch {
			case depth > 4 || rng.Intn(3) == 0:
				for w := 0; w <= rng.Intn(3); w++ {
					b.WriteString(words[rng.Intn(len(words))])
					b.WriteByte(' ')
				}
			case rng.Intn(8) == 0:
				b.WriteString("<hr>")
			default:
				tag := tags[rng.Intn(len(tags))]
				fmt.Fprintf(&b, "<%s>", tag)
				emit(depth + 1)
				if rng.Intn(10) != 0 {
					fmt.Fprintf(&b, "</%s>", tag)
				}
			}
		}
	}
	emit(0)
	b.WriteString("</body></html>")
	return b.String()
}

func sameRanking(a, b []Ranked) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		if a[i].Node != b[i].Node || a[i].Score != b[i].Score {
			return i, false
		}
	}
	return 0, true
}

func TestDifferentialSubtreeRankings(t *testing.T) {
	refs := []struct {
		h    Heuristic
		slow func(*tagtree.Node) []Ranked
	}{
		{HF(), slowHFRank},
		{GSI(), slowGSIRank},
		{LTC(), slowLTCRank},
		{Compound(), slowCompoundRank},
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 80; trial++ {
		root, err := tagtree.Parse(randPageHTML(rng))
		if err != nil {
			t.Fatalf("trial %d: parse: %v", trial, err)
		}
		for _, ref := range refs {
			got := ref.h.Rank(root)
			want := ref.slow(root)
			if at, ok := sameRanking(got, want); !ok {
				t.Fatalf("trial %d: %s diverged at entry %d (of %d vs %d)",
					trial, ref.h.Name(), at, len(got), len(want))
			}
		}
	}
}
