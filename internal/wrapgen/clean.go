package wrapgen

import (
	"fmt"
	"net/url"
	"strings"
)

// Record post-processing: aggregation servers normalize wrapper output
// before fusing it with other sources — absolute URLs, trimmed text,
// parsed prices.

// URLFields returns the names of the wrapper's link-valued fields (href
// and src projections).
func (w *Wrapper) URLFields() []string {
	var names []string
	for _, f := range w.Fields {
		if f.Attr == "href" || f.Attr == "src" {
			names = append(names, f.Name)
		}
	}
	return names
}

// ResolveURLs rewrites every link-valued field of the records to an
// absolute URL against base (the page's own URL). Unparseable values are
// left untouched.
func (w *Wrapper) ResolveURLs(records []Record, base string) error {
	baseURL, err := url.Parse(base)
	if err != nil {
		return fmt.Errorf("wrapgen: parse base url %q: %w", base, err)
	}
	fields := w.URLFields()
	for _, rec := range records {
		for _, name := range fields {
			val, ok := rec[name]
			if !ok || val == "" {
				continue
			}
			ref, err := url.Parse(val)
			if err != nil {
				continue
			}
			rec[name] = baseURL.ResolveReference(ref).String()
		}
	}
	return nil
}

// CleanRecords trims and collapses whitespace in every text field of the
// records, in place.
func CleanRecords(records []Record) {
	for _, rec := range records {
		for k, v := range rec {
			rec[k] = collapse(v)
		}
	}
}

func collapse(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// Price extracts the first price-like token ("$12.95", "$1,204.00",
// "12.95") from the record field and returns its numeric value in cents,
// or ok=false when the field holds no price.
func (r Record) Price(field string) (cents int64, ok bool) {
	s := r[field]
	for i := 0; i < len(s); i++ {
		if s[i] != '$' && !isDigit(s[i]) {
			continue
		}
		j := i
		if s[j] == '$' {
			j++
		}
		start := j
		var whole int64
		digits := 0
		for j < len(s) && (isDigit(s[j]) || s[j] == ',') {
			if s[j] != ',' {
				whole = whole*10 + int64(s[j]-'0')
				digits++
			}
			j++
		}
		if digits == 0 || digits > 12 {
			i = j
			continue
		}
		cents := whole * 100
		if j+2 < len(s) && s[j] == '.' && isDigit(s[j+1]) && isDigit(s[j+2]) {
			cents += int64(s[j+1]-'0')*10 + int64(s[j+2]-'0')
			j += 3
		} else if s[i] != '$' {
			// A bare integer without cents or a currency mark is too
			// ambiguous to call a price.
			i = j
			continue
		}
		_ = start
		return cents, true
	}
	return 0, false
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
