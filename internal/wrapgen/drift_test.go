package wrapgen

import (
	"testing"

	"omini/internal/corpus"
	"omini/internal/sitegen"
)

func TestDriftLowAcrossSameSitePages(t *testing.T) {
	spec := siteSpec(t, "www.bn.example")
	w, err := Learn(spec.Name, spec.Page(0).HTML)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Signature) == 0 {
		t.Fatal("Learn did not record a signature")
	}
	for idx := 1; idx <= 4; idx++ {
		drift, err := w.Drift(spec.Page(idx).HTML)
		if err != nil {
			t.Fatal(err)
		}
		if drift > 0.35 {
			t.Errorf("page %d drift = %.3f, want low (same structure, new content)", idx, drift)
		}
		stale, err := w.Stale(spec.Page(idx).HTML, DefaultDriftThreshold)
		if err != nil {
			t.Fatal(err)
		}
		if stale {
			t.Errorf("page %d flagged stale", idx)
		}
	}
}

func TestDriftHighAcrossRedesign(t *testing.T) {
	// Train on a table site, test against a div-card site: a redesign.
	w, err := Learn("redesign.example", siteSpec(t, "www.bn.example").Page(0).HTML)
	if err != nil {
		t.Fatal(err)
	}
	redesigned := siteSpec(t, "www.etoys.example").Page(0)
	drift, err := w.Drift(redesigned.HTML)
	if err != nil {
		t.Fatal(err)
	}
	if drift < DefaultDriftThreshold {
		t.Errorf("redesign drift = %.3f, want above %.2f", drift, DefaultDriftThreshold)
	}
	stale, err := w.Stale(redesigned.HTML, DefaultDriftThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if !stale {
		t.Error("redesigned page not flagged stale")
	}
}

func TestDriftWithoutSignature(t *testing.T) {
	w := &Wrapper{}
	drift, err := w.Drift(sitegen.LOC().HTML)
	if err != nil || drift != 0 {
		t.Errorf("drift without signature = %v, %v", drift, err)
	}
	if err := w.TrainSignature(sitegen.LOC().HTML); err != nil {
		t.Fatal(err)
	}
	if len(w.Signature) == 0 {
		t.Error("TrainSignature recorded nothing")
	}
	if _, err := w.Drift(""); err == nil {
		t.Error("Drift on unparseable page succeeded")
	}
}

// keep corpus import used even if site helpers change
var _ = corpus.AllSpecs
