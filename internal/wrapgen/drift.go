package wrapgen

import (
	"omini/internal/tagtree"
)

// Wrapper evolution: detecting when a site's structure has drifted from
// the page a wrapper was learned on, so the wrapper can be relearned
// before it starts mis-extracting (the paper's "wrapper generation and
// evolution process").

// DefaultDriftThreshold is the similarity below which a page no longer
// resembles the wrapper's training page. Content changes leave similarity
// at 1.0; adding or removing a couple of chrome blocks keeps it above 0.8;
// a layout redesign drops it far lower.
const DefaultDriftThreshold = 0.6

// TrainSignature records the training page's structure on the wrapper so
// later pages can be drift-checked. Learn calls it automatically; it is
// exported for wrappers deserialized from older JSON without a signature.
func (w *Wrapper) TrainSignature(html string) error {
	root, err := tagtree.Parse(html)
	if err != nil {
		return err
	}
	w.Signature = tagtree.PathSignature(root)
	return nil
}

// DriftScore returns 1 − structural similarity between a recorded
// training-page signature and an already-built page tree: 0 means
// structurally identical, 1 means nothing shared. An empty signature
// reports 0 (unknown). This is the tree-level primitive behind
// (*Wrapper).Drift; the wrapper farm's revalidation sampler calls it
// directly with the tree the fast path already built, so a drift check
// costs one signature walk and no reparse.
func DriftScore(sig tagtree.Signature, root *tagtree.Node) float64 {
	if len(sig) == 0 || root == nil {
		return 0
	}
	return 1 - sig.Similarity(tagtree.PathSignature(root))
}

// Drift returns 1 − structural similarity between the page and the
// wrapper's training page: 0 means structurally identical, 1 means nothing
// shared. Wrappers without a recorded signature report 0 (unknown).
func (w *Wrapper) Drift(html string) (float64, error) {
	if len(w.Signature) == 0 {
		return 0, nil
	}
	root, err := tagtree.Parse(html)
	if err != nil {
		return 0, err
	}
	return DriftScore(w.Signature, root), nil
}

// Stale reports whether the page has drifted past the threshold (use
// DefaultDriftThreshold when unsure) and the wrapper should be relearned.
func (w *Wrapper) Stale(html string, threshold float64) (bool, error) {
	drift, err := w.Drift(html)
	if err != nil {
		return false, err
	}
	return drift > threshold, nil
}
