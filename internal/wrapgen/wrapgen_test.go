package wrapgen

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"omini/internal/core"
	"omini/internal/corpus"
	"omini/internal/sitegen"
)

// siteSpec fetches a named site spec from the corpus.
func siteSpec(t *testing.T, name string) sitegen.SiteSpec {
	t.Helper()
	for _, s := range corpus.AllSpecs() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("site %q not in corpus", name)
	return sitegen.SiteSpec{}
}

func TestLearnFromCanoe(t *testing.T) {
	page := sitegen.Canoe()
	w, err := Learn(page.Site, page.HTML)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	if w.Site != page.Site || !w.Rule.Valid() {
		t.Fatalf("wrapper = %+v", w)
	}
	names := make(map[string]Field, len(w.Fields))
	for _, f := range w.Fields {
		names[f.Name] = f
	}
	for _, want := range []string{"title", "url", "image"} {
		if _, ok := names[want]; !ok {
			t.Errorf("schema missing %q: %+v", want, w.Fields)
		}
	}
	// The title must come from the headline link, not the photo cell.
	if f := names["title"]; !strings.HasSuffix(f.Path, ".a") {
		t.Errorf("title path = %q", f.Path)
	}

	records, err := w.Extract(page.HTML)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if len(records) != page.Truth.ObjectCount {
		t.Fatalf("got %d records, want %d", len(records), page.Truth.ObjectCount)
	}
	for i, rec := range records {
		if rec["title"] != page.Truth.ObjectTitles[i] {
			t.Errorf("record %d title = %q, want %q", i, rec["title"], page.Truth.ObjectTitles[i])
		}
		if !strings.HasPrefix(rec["url"], "/cnews/") {
			t.Errorf("record %d url = %q", i, rec["url"])
		}
		if !strings.HasPrefix(rec["image"], "/img/") {
			t.Errorf("record %d image = %q", i, rec["image"])
		}
	}
}

func TestWrapperGeneralizesAcrossPages(t *testing.T) {
	spec := siteSpec(t, "www.bn.example")
	train := spec.Page(0)
	w, err := Learn(spec.Name, train.HTML)
	if err != nil {
		t.Fatalf("Learn: %v", err)
	}
	// Replay the wrapper on unseen pages of the same site.
	for idx := 1; idx <= 5; idx++ {
		page := spec.Page(idx)
		records, err := w.Extract(page.HTML)
		if err != nil {
			t.Fatalf("page %d: %v", idx, err)
		}
		if len(records) != page.Truth.ObjectCount {
			t.Errorf("page %d: %d records, want %d", idx, len(records), page.Truth.ObjectCount)
			continue
		}
		for i, rec := range records {
			if rec["title"] != page.Truth.ObjectTitles[i] {
				t.Errorf("page %d record %d title = %q, want %q",
					idx, i, rec["title"], page.Truth.ObjectTitles[i])
			}
		}
	}
}

func TestWrapperOnEveryLayoutFamily(t *testing.T) {
	// Wrapper learning must produce title-bearing records on every layout
	// family in the corpus (via one representative site each).
	sites := map[string]string{
		"row-table":    "www.fatbrain.example",
		"item-table":   "www.canoe.example",
		"hr-record":    "www.thestar.example",
		"dl-record":    "www.bookbuyer.example",
		"ul-record":    "www.codysbooks.example",
		"para-record":  "www.excite.example",
		"div-card":     "www.etoys.example",
		"font-catalog": "www.wine.example",
	}
	for layout, name := range sites {
		t.Run(layout, func(t *testing.T) {
			spec := siteSpec(t, name)
			train := spec.Page(2)
			w, err := Learn(spec.Name, train.HTML)
			if err != nil {
				t.Fatalf("Learn: %v", err)
			}
			test := spec.Page(3)
			records, err := w.Extract(test.HTML)
			if err != nil {
				t.Fatalf("Extract: %v", err)
			}
			if len(records) == 0 {
				t.Fatal("no records")
			}
			withTitle := 0
			for _, rec := range records {
				if rec["title"] != "" {
					withTitle++
				}
			}
			if withTitle < len(records)*2/3 {
				t.Errorf("only %d/%d records carry a title; fields: %+v",
					withTitle, len(records), w.Fields)
			}
		})
	}
}

func TestLearnErrors(t *testing.T) {
	if _, err := Learn("x", "<html><body>prose only</body></html>"); err == nil {
		t.Error("Learn on object-free page succeeded")
	}
	res := &core.Result{}
	if _, err := LearnFromResult("x", res); !errors.Is(err, ErrNoObjects) {
		t.Errorf("err = %v, want ErrNoObjects", err)
	}
}

func TestWrapperJSONRoundTrip(t *testing.T) {
	page := sitegen.Canoe()
	w, err := Learn(page.Site, page.HTML)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(w)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Wrapper
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	records, err := back.Extract(page.HTML)
	if err != nil {
		t.Fatalf("extract with unmarshaled wrapper: %v", err)
	}
	if len(records) != page.Truth.ObjectCount {
		t.Errorf("got %d records", len(records))
	}
}

func TestFieldSupportThreshold(t *testing.T) {
	// An optional field (image on ~half the items) must not become a
	// schema field when support is below 2/3, but common fields survive.
	spec := siteSpec(t, "www.vancouversun.example") // news: HasImg ~1/2
	w, err := Learn(spec.Name, spec.Page(1).HTML)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range w.Fields {
		if f.Support < minFieldSupport-1e-9 {
			t.Errorf("field %q has support %.2f below threshold", f.Name, f.Support)
		}
	}
}

func TestProjectSkipsEmptyObjects(t *testing.T) {
	page := sitegen.Canoe()
	w, err := Learn(page.Site, page.HTML)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Project(nil); len(got) != 0 {
		t.Errorf("Project(nil) = %v", got)
	}
}
