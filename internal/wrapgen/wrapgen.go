// Package wrapgen implements the wrapper-generation step the paper names
// as its integration path ("we plan to demonstrate the usefulness of Omini
// by combining it with a wrapper generation system, e.g. the XWRAP Elite,
// to automate the wrapper generation and evolution process"): from one
// automatically extracted result page, learn a per-site wrapper that turns
// every object into a structured record — named fields projected from the
// repeated tag structure the objects share.
//
// Learning is fully automatic, like the rest of the system: the field
// schema is the set of leaf signatures (downward tag paths to text or to a
// link/image attribute) shared by at least two thirds of the training
// objects. Field names are assigned by role: the first link's text is the
// title, its href the url, the first image's src the image; everything
// else is named by its path.
package wrapgen

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"omini/internal/core"
	"omini/internal/extract"
	"omini/internal/rules"
	"omini/internal/tagtree"
)

// minFieldSupport is the fraction of training objects that must exhibit a
// signature for it to become a wrapper field.
const minFieldSupport = 2.0 / 3

// Field is one projected attribute of a record.
type Field struct {
	// Name is the field's record key ("title", "url", "image",
	// "text.b1", ...).
	Name string `json:"name"`
	// Path is the dot-joined downward tag path from the object's top
	// level to the value's element ("" for top-level text, "b.a" for text
	// inside a link inside bold).
	Path string `json:"path"`
	// Attr selects an attribute of the element instead of its text
	// ("href", "src"); empty means text content.
	Attr string `json:"attr,omitempty"`
	// Occurrence is the 1-based index among the object's matches of the
	// same Path/Attr (the second link of an object is occurrence 2).
	Occurrence int `json:"occurrence"`
	// Support is the fraction of training objects carrying the field.
	Support float64 `json:"support"`
}

// Wrapper is a learned per-site record extractor: an Omini extraction rule
// plus a field schema.
type Wrapper struct {
	// Site names the site the wrapper was learned from.
	Site string `json:"site"`
	// Rule locates the object-rich subtree and separator.
	Rule rules.Rule `json:"rule"`
	// Fields is the record schema, in a stable order.
	Fields []Field `json:"fields"`
	// Signature records the training page's tag-path structure for drift
	// detection (see Drift).
	Signature tagtree.Signature `json:"signature,omitempty"`
}

// Record is one structured object: field name to value.
type Record map[string]string

// Errors returned by the package.
var (
	// ErrNoObjects is returned when the training page yields no objects.
	ErrNoObjects = errors.New("wrapgen: no objects to learn from")
	// ErrNoFields is returned when the training objects share no
	// structure to project fields from.
	ErrNoFields = errors.New("wrapgen: objects share no common fields")
)

// Learn builds a wrapper for the site from a training page, running the
// full Omini pipeline and generalizing the extracted objects' structure.
func Learn(site, html string) (*Wrapper, error) {
	extractor := core.New(core.Options{})
	res, err := extractor.Extract(html)
	if err != nil {
		return nil, fmt.Errorf("wrapgen: learn %s: %w", site, err)
	}
	w, err := LearnFromResult(site, res)
	if err != nil {
		return nil, err
	}
	if res.Tree != nil {
		w.Signature = tagtree.PathSignature(res.Tree)
	}
	return w, nil
}

// LearnFromResult builds a wrapper from an existing extraction result.
func LearnFromResult(site string, res *core.Result) (*Wrapper, error) {
	if len(res.Objects) == 0 {
		return nil, ErrNoObjects
	}
	fields, err := learnFields(res.Objects)
	if err != nil {
		return nil, err
	}
	return &Wrapper{
		Site:   site,
		Rule:   res.Rule(site),
		Fields: fields,
	}, nil
}

// Extract applies the wrapper to a page of its site: rule-replay extraction
// (the fast path) followed by field projection.
func (w *Wrapper) Extract(html string) ([]Record, error) {
	extractor := core.New(core.Options{})
	res, err := extractor.ExtractWithRule(html, w.Rule)
	if err != nil {
		return nil, fmt.Errorf("wrapgen: extract: %w", err)
	}
	return w.Project(res.Objects), nil
}

// Project converts extracted objects to records under the wrapper's
// schema. Objects exhibiting none of the fields produce no record.
func (w *Wrapper) Project(objects []extract.Object) []Record {
	records := make([]Record, 0, len(objects))
	for _, o := range objects {
		values := valuesOf(o)
		rec := make(Record, len(w.Fields))
		for _, f := range w.Fields {
			key := sigKey{path: f.Path, attr: f.Attr}
			vals := values[key]
			if f.Occurrence <= len(vals) {
				rec[f.Name] = vals[f.Occurrence-1]
			}
		}
		if len(rec) > 0 {
			records = append(records, rec)
		}
	}
	return records
}

// sigKey identifies a value slot inside an object.
type sigKey struct {
	path string
	attr string
}

// learnFields generalizes the objects' shared leaf structure into a field
// schema.
func learnFields(objects []extract.Object) ([]Field, error) {
	type slot struct {
		key        sigKey
		occurrence int
	}
	support := make(map[slot]int)
	for _, o := range objects {
		for key, vals := range valuesOf(o) {
			for i := range vals {
				support[slot{key: key, occurrence: i + 1}]++
			}
		}
	}
	threshold := int(minFieldSupport*float64(len(objects)) + 0.5)
	if threshold < 1 {
		threshold = 1
	}
	var slots []slot
	for s, n := range support {
		if n >= threshold {
			slots = append(slots, s)
		}
	}
	if len(slots) == 0 {
		return nil, ErrNoFields
	}
	sort.Slice(slots, func(i, j int) bool {
		a, b := slots[i], slots[j]
		if a.key.path != b.key.path {
			return a.key.path < b.key.path
		}
		if a.key.attr != b.key.attr {
			return a.key.attr < b.key.attr
		}
		return a.occurrence < b.occurrence
	})

	fields := make([]Field, 0, len(slots))
	for _, s := range slots {
		fields = append(fields, Field{
			Name:       "", // assigned below
			Path:       s.key.path,
			Attr:       s.key.attr,
			Occurrence: s.occurrence,
			Support:    float64(support[s]) / float64(len(objects)),
		})
	}
	nameFields(fields)
	return fields, nil
}

// nameFields assigns stable, role-based names: the first link text is
// "title", its href "url", the first image "image"; the remaining fields
// are named from their paths.
func nameFields(fields []Field) {
	// Locate the role fields: the shallowest first-occurrence link/image.
	titleIdx, urlIdx, imgIdx := -1, -1, -1
	depth := func(path string) int {
		if path == "" {
			return 0
		}
		return strings.Count(path, ".") + 1
	}
	for i, f := range fields {
		if f.Occurrence != 1 {
			continue
		}
		last := lastSeg(f.Path)
		switch {
		case last == "a" && f.Attr == "href" && (urlIdx < 0 || depth(f.Path) < depth(fields[urlIdx].Path)):
			urlIdx = i
		case last == "img" && f.Attr == "src" && (imgIdx < 0 || depth(f.Path) < depth(fields[imgIdx].Path)):
			imgIdx = i
		}
	}
	// The title is the text inside the primary link: the shallowest text
	// field whose path starts at the url field's element (<a>text</a>, or
	// <a><b>text</b></a> when the anchor wraps formatting).
	if urlIdx >= 0 {
		linkPath := fields[urlIdx].Path
		for i, f := range fields {
			if f.Occurrence != 1 || f.Attr != "" {
				continue
			}
			if f.Path != linkPath && !strings.HasPrefix(f.Path, linkPath+".") {
				continue
			}
			if titleIdx < 0 || depth(f.Path) < depth(fields[titleIdx].Path) {
				titleIdx = i
			}
		}
	}
	used := make(map[string]bool)
	assign := func(i int, name string) {
		if i >= 0 && !used[name] {
			fields[i].Name = name
			used[name] = true
		}
	}
	assign(titleIdx, "title")
	assign(urlIdx, "url")
	assign(imgIdx, "image")
	for i := range fields {
		if fields[i].Name != "" {
			continue
		}
		name := pathName(fields[i])
		for used[name] {
			name += "x"
		}
		fields[i].Name = name
		used[name] = true
	}
}

// pathName derives a readable default field name.
func pathName(f Field) string {
	base := f.Path
	if base == "" {
		base = "text"
	}
	if f.Attr != "" {
		base += "@" + f.Attr
	}
	if f.Occurrence > 1 {
		base = fmt.Sprintf("%s%d", base, f.Occurrence)
	}
	return base
}

func lastSeg(path string) string {
	if i := strings.LastIndexByte(path, '.'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// valuesOf enumerates an object's value slots: for every element on a
// downward path, its attribute values of interest, and for every element
// whose children include text, the concatenated direct text — keyed by
// path signature, in document order.
func valuesOf(o extract.Object) map[sigKey][]string {
	values := make(map[sigKey][]string)
	var walk func(n *tagtree.Node, sig string)
	walk = func(n *tagtree.Node, sig string) {
		// Direct text of this element (content children only), one slot.
		var text []string
		for _, c := range n.Children {
			if c.IsContent() {
				text = append(text, c.Text)
			}
		}
		if len(text) > 0 {
			key := sigKey{path: sig}
			values[key] = append(values[key], strings.Join(text, " "))
		}
		for _, attr := range []string{"href", "src"} {
			for _, a := range n.Attrs {
				if a.Name == attr && a.Value != "" {
					key := sigKey{path: sig, attr: attr}
					values[key] = append(values[key], a.Value)
				}
			}
		}
		for _, c := range n.Children {
			if !c.IsContent() {
				walk(c, sig+"."+c.Tag)
			}
		}
	}
	for _, n := range o.Nodes {
		if n.IsContent() {
			// Top-level loose text.
			key := sigKey{path: ""}
			values[key] = append(values[key], n.Text)
			continue
		}
		walk(n, n.Tag)
	}
	return values
}
