package wrapgen

import (
	"strings"
	"testing"

	"omini/internal/sitegen"
)

func TestResolveURLs(t *testing.T) {
	page := sitegen.Canoe()
	w, err := Learn(page.Site, page.HTML)
	if err != nil {
		t.Fatal(err)
	}
	records, err := w.Extract(page.HTML)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ResolveURLs(records, "http://www.canoe.com/search?q=x"); err != nil {
		t.Fatalf("ResolveURLs: %v", err)
	}
	for i, rec := range records {
		if !strings.HasPrefix(rec["url"], "http://www.canoe.com/cnews/") {
			t.Errorf("record %d url = %q, want absolute", i, rec["url"])
		}
		if !strings.HasPrefix(rec["image"], "http://www.canoe.com/img/") {
			t.Errorf("record %d image = %q, want absolute", i, rec["image"])
		}
	}
	if err := w.ResolveURLs(records, "http://bad url with space"); err == nil {
		t.Error("bad base URL accepted")
	}
}

func TestURLFields(t *testing.T) {
	page := sitegen.Canoe()
	w, err := Learn(page.Site, page.HTML)
	if err != nil {
		t.Fatal(err)
	}
	fields := w.URLFields()
	want := map[string]bool{"url": false, "image": false}
	for _, name := range fields {
		if _, ok := want[name]; ok {
			want[name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("URLFields missing %q: %v", name, fields)
		}
	}
}

func TestCleanRecords(t *testing.T) {
	records := []Record{
		{"title": "  spaced   out\n title ", "desc": "fine"},
	}
	CleanRecords(records)
	if records[0]["title"] != "spaced out title" {
		t.Errorf("title = %q", records[0]["title"])
	}
	if records[0]["desc"] != "fine" {
		t.Errorf("desc = %q", records[0]["desc"])
	}
}

func TestRecordPrice(t *testing.T) {
	tests := []struct {
		name      string
		give      string
		wantCents int64
		wantOK    bool
	}{
		{"dollars and cents", "list $12.95 today", 1295, true},
		{"thousands", "$1,204.00", 120400, true},
		{"dollar no cents", "$15 shipped", 1500, true},
		{"bare decimal", "weighs 12.95 pounds", 1295, true},
		{"bare integer rejected", "take 12 with you", 0, false},
		{"no price", "no numbers here", 0, false},
		{"empty", "", 0, false},
		{"price after text", "by Okafor, Lindqvist $46.72", 4672, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rec := Record{"f": tt.give}
			cents, ok := rec.Price("f")
			if ok != tt.wantOK || cents != tt.wantCents {
				t.Errorf("Price(%q) = %d, %v; want %d, %v",
					tt.give, cents, ok, tt.wantCents, tt.wantOK)
			}
		})
	}
	if _, ok := (Record{}).Price("missing"); ok {
		t.Error("Price on missing field succeeded")
	}
}

func TestPriceOnCorpusRecords(t *testing.T) {
	// Bookstore records carry real prices the accessor must parse.
	var spec sitegen.SiteSpec
	spec = sitegen.SiteSpec{
		Name: "prices.example", Domain: sitegen.DomainBooks,
		LayoutName: "row-table", MinItems: 8, MaxItems: 8,
	}
	page := spec.Page(0)
	w, err := Learn(spec.Name, page.HTML)
	if err != nil {
		t.Fatal(err)
	}
	records, err := w.Extract(page.HTML)
	if err != nil {
		t.Fatal(err)
	}
	priced := 0
	for _, rec := range records {
		for field := range rec {
			if cents, ok := rec.Price(field); ok && cents > 0 {
				priced++
				break
			}
		}
	}
	if priced < len(records) {
		t.Errorf("only %d/%d records yielded a price", priced, len(records))
	}
}
