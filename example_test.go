package omini_test

import (
	"fmt"

	"omini"
)

const resultPage = `<html><head><title>results</title></head><body>
<table><tr><td><a href="/">Home</a></td><td><a href="/help">Help</a></td></tr></table>
<ul>
<li><a href="/r/1">First result</a> with a short description $9.99</li>
<li><a href="/r/2">Second result</a> with another description $19.99</li>
<li><a href="/r/3">Third result</a> and one more line of text $29.99</li>
</ul>
<p><a href="/page/2">Next page</a></p>
</body></html>`

// The one-call entry point: objects out, no configuration in.
func ExampleExtract() {
	objects, err := omini.Extract(resultPage)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(len(objects), "objects")
	fmt.Println(objects[0].Text())
	// Output:
	// 3 objects
	// First resultwith a short description $9.99
}

// The Extractor exposes what was discovered: the object-rich subtree path,
// the separator tag, and the combined candidate probabilities.
func ExampleExtractor_ExtractResult() {
	res, err := omini.NewExtractor().ExtractResult(resultPage)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("subtree:", res.SubtreePath)
	fmt.Println("separator:", res.Separator)
	// Output:
	// subtree: html[1].body[2].ul[2]
	// separator: li
}

// Rules learned from one page replay on the site's other pages, skipping
// discovery.
func ExampleExtractor_Learn() {
	e := omini.NewExtractor()
	_, rule, err := e.Learn("www.example.com", resultPage)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fast, err := e.ExtractWithRule(resultPage, rule)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(rule.Separator, len(fast.Objects))
	// Output:
	// li 3
}

// A wrapper turns objects into named-field records.
func ExampleLearnWrapper() {
	w, err := omini.LearnWrapper("www.example.com", resultPage)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	records, err := w.Extract(resultPage)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(records[0]["title"], records[0]["url"])
	// Output:
	// First result /r/1
}

// FindNextPage locates the crawl pointer to the rest of the result set.
func ExampleFindNextPage() {
	href, ok := omini.FindNextPage(resultPage)
	fmt.Println(href, ok)
	// Output:
	// /page/2 true
}
