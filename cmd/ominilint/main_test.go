package main

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// jsonReport mirrors the documented -json output shape.
type jsonReport struct {
	Findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	} `json:"findings"`
	Analyzers []struct {
		Name     string  `json:"name"`
		Millis   float64 `json:"millis"`
		Findings int     `json:"findings"`
	} `json:"analyzers"`
}

func buildLinter(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ominilint")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestFixtureExitCodes builds the linter and checks the CLI contract
// against each violating fixture tree: nonzero exit, and -json output
// that parses into the documented shape with per-analyzer timings.
func TestFixtureExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the linter binary; skipped with -short")
	}
	bin := buildLinter(t)
	for _, fixture := range []string{
		"governloop", "obsnames", "errwrap", "ctxfirst", "puredet",
		"lockhold", "bodyclose", "goleak", "spanend",
	} {
		dir := filepath.Join("..", "..", "internal", "lint", "testdata", "src", fixture)
		cmd := exec.Command(bin, "-json", "./...")
		cmd.Dir = dir
		out, err := cmd.Output()
		var ee *exec.ExitError
		if !errors.As(err, &ee) || ee.ExitCode() != 1 {
			t.Errorf("fixture %s: want exit 1, got %v", fixture, err)
			continue
		}
		var report jsonReport
		if err := json.Unmarshal(out, &report); err != nil {
			t.Errorf("fixture %s: -json output does not parse: %v\n%s", fixture, err, out)
			continue
		}
		if len(report.Findings) == 0 {
			t.Errorf("fixture %s: exit 1 but no findings in JSON output", fixture)
		}
		if len(report.Analyzers) == 0 {
			t.Errorf("fixture %s: -json output carries no analyzer timings", fixture)
		}
		fromTimings := 0
		for _, a := range report.Analyzers {
			fromTimings += a.Findings
		}
		if fromTimings < len(report.Findings) {
			t.Errorf("fixture %s: timing counts (%d) cover fewer findings than reported (%d)",
				fixture, fromTimings, len(report.Findings))
		}
	}
}

// TestOnlyFilter checks -only restricts the run to the named analyzer.
func TestOnlyFilter(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the linter binary; skipped with -short")
	}
	bin := buildLinter(t)
	dir := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "lockhold")
	cmd := exec.Command(bin, "-json", "-only=lockhold", "./...")
	cmd.Dir = dir
	out, err := cmd.Output()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1, got %v", err)
	}
	var report jsonReport
	if err := json.Unmarshal(out, &report); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out)
	}
	if len(report.Analyzers) != 1 || report.Analyzers[0].Name != "lockhold" {
		t.Fatalf("-only=lockhold should time exactly that analyzer, got %+v", report.Analyzers)
	}
	for _, f := range report.Findings {
		if f.Analyzer != "lockhold" {
			t.Fatalf("-only=lockhold leaked a %s finding: %s", f.Analyzer, f.Message)
		}
	}

	cmd = exec.Command(bin, "-only=nosuch", "./...")
	cmd.Dir = dir
	if err := cmd.Run(); err == nil {
		t.Fatal("-only=nosuch should fail with a usage error")
	} else if !errors.As(err, &ee) || ee.ExitCode() != 2 {
		t.Fatalf("-only=nosuch: want exit 2, got %v", err)
	}
}

// TestStaleBaseline checks the baseline round trip: a valid entry
// suppresses its finding, and an entry naming a vanished function
// fails the -only=baseline staleness gate.
func TestStaleBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the linter binary; skipped with -short")
	}
	bin := buildLinter(t)
	dir, err := filepath.Abs(filepath.Join("..", "..", "internal", "lint", "testdata", "src", "goleak"))
	if err != nil {
		t.Fatal(err)
	}

	good := filepath.Join(t.TempDir(), "good.baseline")
	if err := os.WriteFile(good, []byte(
		"goleak farm.Server.badFireAndForget — fixture exception\n"+
			"goleak farm.Server.badInnerChannel — fixture exception\n"+
			"goleak farm.Server.badNamedNoContext — fixture exception\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-only=goleak", "-baseline="+good, "./...")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("full baseline should leave the fixture clean, got %v\n%s", err, out)
	}

	stale := filepath.Join(t.TempDir(), "stale.baseline")
	if err := os.WriteFile(stale, []byte("goleak farm.Server.gone — names nothing\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd = exec.Command(bin, "-only=baseline", "-baseline="+stale, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 1 {
		t.Fatalf("stale baseline should exit 1, got %v\n%s", err, out)
	}
}
