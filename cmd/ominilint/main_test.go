package main

import (
	"encoding/json"
	"errors"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestFixtureExitCodes builds the linter and checks the CLI contract
// against each violating fixture tree: nonzero exit, and -json output
// that parses into the documented shape.
func TestFixtureExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the linter binary; skipped with -short")
	}
	bin := filepath.Join(t.TempDir(), "ominilint")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	for _, fixture := range []string{"governloop", "obsnames", "errwrap", "ctxfirst", "puredet"} {
		dir := filepath.Join("..", "..", "internal", "lint", "testdata", "src", fixture)
		cmd := exec.Command(bin, "-json", "./...")
		cmd.Dir = dir
		out, err := cmd.Output()
		var ee *exec.ExitError
		if !errors.As(err, &ee) || ee.ExitCode() != 1 {
			t.Errorf("fixture %s: want exit 1, got %v", fixture, err)
			continue
		}
		var findings []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal(out, &findings); err != nil {
			t.Errorf("fixture %s: -json output does not parse: %v\n%s", fixture, err, out)
			continue
		}
		if len(findings) == 0 {
			t.Errorf("fixture %s: exit 1 but no findings in JSON output", fixture)
		}
	}
}
