// Command ominilint runs the project's static-analysis suite over the
// module: governloop, obsnames, errwrap, ctxfirst, puredet, lockhold,
// bodyclose, goleak, and spanend (see internal/lint and DESIGN.md §11,
// §16).
//
// Usage:
//
//	ominilint [-json] [-only=analyzer,...] [-baseline=file] [packages]
//
// Packages default to ./... resolved against the working directory.
// Findings print as "file:line: analyzer: message" (or, with -json, as
// an object {"findings": [...], "analyzers": [{name, millis,
// findings}]} that includes per-analyzer wall time).
//
// -only restricts the run to the named analyzers; the special name
// "baseline" runs nothing but the stale-baseline check, failing if the
// -baseline file names functions that no longer exist.
//
// -baseline points at a reviewed exception file (see lint.baseline at
// the repo root): findings inside baselined functions are suppressed,
// and stale entries are reported as findings of the "baseline"
// analyzer.
//
// Exit status: 0 clean, 1 findings, 2 load/usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"omini/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings and per-analyzer timings as JSON")
	only := flag.String("only", "", "comma-separated analyzers to run (special name \"baseline\": stale-baseline check only)")
	baselinePath := flag.String("baseline", "", "reviewed baseline file; matching findings are suppressed, stale entries reported")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ominilint [-json] [-only=analyzer,...] [-baseline=file] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	findings, timings, err := run(*only, *baselinePath, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ominilint:", err)
		os.Exit(2)
	}

	if *jsonOut {
		if err := writeJSON(os.Stdout, findings, timings); err != nil {
			fmt.Fprintln(os.Stderr, "ominilint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func run(only, baselinePath string, patterns []string) ([]lint.Finding, []lint.AnalyzerTiming, error) {
	dir, err := os.Getwd()
	if err != nil {
		return nil, nil, err
	}
	analyzers, staleOnly, err := selectAnalyzers(only)
	if err != nil {
		return nil, nil, err
	}

	var baseline *lint.Baseline
	if baselinePath != "" {
		baseline, err = lint.LoadBaseline(baselinePath)
		if err != nil {
			return nil, nil, err
		}
	}
	if staleOnly && baseline == nil {
		return nil, nil, fmt.Errorf("-only=baseline requires -baseline=<file>")
	}

	loader, err := lint.NewLoader(dir)
	if err != nil {
		return nil, nil, err
	}
	pkgs, err := loader.LoadPatterns(dir, patterns)
	if err != nil {
		return nil, nil, err
	}

	if staleOnly {
		return lint.StaleEntries(baseline, pkgs), nil, nil
	}
	findings, timings := lint.RunAnalyzersTimed(pkgs, analyzers)
	findings = lint.ApplyBaseline(baseline, pkgs, findings)
	return findings, timings, nil
}

// selectAnalyzers resolves -only to a concrete analyzer list. The
// special name "baseline" (alone) selects the stale-check-only mode.
func selectAnalyzers(only string) ([]*lint.Analyzer, bool, error) {
	all := lint.NewAnalyzers()
	if only == "" {
		return all, false, nil
	}
	if only == "baseline" {
		return nil, true, nil
	}
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			known := make([]string, 0, len(all))
			for _, a := range all {
				known = append(known, a.Name)
			}
			return nil, false, fmt.Errorf("unknown analyzer %q (known: %s)", name, strings.Join(known, ", "))
		}
		picked = append(picked, a)
	}
	if len(picked) == 0 {
		return nil, false, fmt.Errorf("-only selected no analyzers")
	}
	return picked, false, nil
}

func writeJSON(w *os.File, findings []lint.Finding, timings []lint.AnalyzerTiming) error {
	type finding struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	type timing struct {
		Name     string  `json:"name"`
		Millis   float64 `json:"millis"`
		Findings int     `json:"findings"`
	}
	out := struct {
		Findings  []finding `json:"findings"`
		Analyzers []timing  `json:"analyzers"`
	}{Findings: []finding{}, Analyzers: []timing{}}
	for _, f := range findings {
		out.Findings = append(out.Findings, finding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	for _, t := range timings {
		out.Analyzers = append(out.Analyzers, timing{
			Name:     t.Name,
			Millis:   float64(t.Duration.Microseconds()) / 1000,
			Findings: t.Findings,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
