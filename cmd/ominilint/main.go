// Command ominilint runs the project's static-analysis suite over the
// module: governloop, obsnames, errwrap, ctxfirst, and puredet (see
// internal/lint and DESIGN.md §11).
//
// Usage:
//
//	ominilint [-json] [packages]
//
// Packages default to ./... resolved against the working directory.
// Findings print as "file:line: analyzer: message" (or a JSON array
// with -json). Exit status: 0 clean, 1 findings, 2 load/usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"omini/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: ominilint [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ominilint:", err)
		os.Exit(2)
	}
	findings, err := lint.Run(dir, flag.Args(), lint.NewAnalyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ominilint:", err)
		os.Exit(2)
	}

	if *jsonOut {
		type finding struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]finding, 0, len(findings))
		for _, f := range findings {
			out = append(out, finding{
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "ominilint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
