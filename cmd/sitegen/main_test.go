package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesCorpus(t *testing.T) {
	out := t.TempDir()
	if err := run(out, "comparison", 2, true, true); err != nil {
		t.Fatalf("run: %v", err)
	}
	entries, err := os.ReadDir(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("wrote %d site dirs, want 5", len(entries))
	}
	// Each site dir holds 2 pages + 2 truth files.
	siteDir := filepath.Join(out, entries[0].Name())
	files, err := os.ReadDir(siteDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 4 {
		t.Errorf("site dir holds %d files, want 4", len(files))
	}
	var sawTruth bool
	for _, f := range files {
		if strings.HasSuffix(f.Name(), ".truth") {
			sawTruth = true
			data, err := os.ReadFile(filepath.Join(siteDir, f.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(string(data), "subtree:") {
				t.Errorf("truth file content: %s", data)
			}
		}
	}
	if !sawTruth {
		t.Error("no truth files written")
	}
}

func TestRunReplicas(t *testing.T) {
	out := t.TempDir()
	if err := run(out, "replicas", 1, false, true); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, name := range []string{"loc-search.html", "canoe-search.html"} {
		if _, err := os.Stat(filepath.Join(out, "replicas", name)); err != nil {
			t.Errorf("replica %s missing: %v", name, err)
		}
	}
}

func TestRunUnknownSet(t *testing.T) {
	if err := run(t.TempDir(), "bogus", 1, false, true); err == nil {
		t.Error("unknown set accepted")
	}
}
