// Command sitegen materializes the synthetic evaluation corpus to disk so
// the generated pages can be inspected in a browser or diffed across
// versions of the generator.
//
//	sitegen -out ./corpus -pages 5
//	sitegen -out ./corpus -set comparison -truth
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"omini/internal/corpus"
	"omini/internal/sitegen"
)

func main() {
	var (
		out    = flag.String("out", "corpus", "output directory")
		pages  = flag.Int("pages", 5, "pages per site")
		set    = flag.String("set", "all", "which set: test, experimental, comparison, replicas, all")
		truth  = flag.Bool("truth", false, "also write a .truth file per page")
		silent = flag.Bool("q", false, "suppress per-site progress")
	)
	flag.Parse()
	if err := run(*out, *set, *pages, *truth, *silent); err != nil {
		fmt.Fprintln(os.Stderr, "sitegen:", err)
		os.Exit(1)
	}
}

func run(out, set string, pages int, truth, silent bool) error {
	c := &corpus.Corpus{PagesPerSite: pages}
	var sets []corpus.SitePages
	switch set {
	case "test":
		sets = c.TestSet()
	case "experimental":
		sets = c.ExperimentalSet()
	case "comparison":
		sets = c.ComparisonSet()
	case "replicas":
		// handled below
	case "all":
		sets = append(c.TestSet(), c.ExperimentalSet()...)
	default:
		return fmt.Errorf("unknown set %q", set)
	}

	total := 0
	for _, sp := range sets {
		dir := filepath.Join(out, sp.Spec.Name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		for _, page := range sp.Pages {
			if err := writePage(dir, page, truth); err != nil {
				return err
			}
			total++
		}
		if !silent {
			fmt.Printf("%-32s %d pages (%s layout)\n", sp.Spec.Name, len(sp.Pages), sp.Spec.LayoutName)
		}
	}

	if set == "all" || set == "replicas" {
		dir := filepath.Join(out, "replicas")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		for _, page := range []sitegen.Page{sitegen.LOC(), sitegen.Canoe()} {
			if err := writePage(dir, page, truth); err != nil {
				return err
			}
			total++
		}
		if !silent {
			fmt.Printf("%-32s 2 pages (paper replicas)\n", "replicas")
		}
	}
	if !silent {
		fmt.Printf("wrote %d pages under %s\n", total, out)
	}
	return nil
}

func writePage(dir string, page sitegen.Page, truth bool) error {
	path := filepath.Join(dir, page.Name+".html")
	if err := os.WriteFile(path, []byte(page.HTML), 0o644); err != nil {
		return err
	}
	if !truth {
		return nil
	}
	meta := fmt.Sprintf("subtree: %s\nseparators: %v\nobjects: %d\n",
		page.Truth.SubtreePath, page.Truth.Separators, page.Truth.ObjectCount)
	return os.WriteFile(filepath.Join(dir, page.Name+".truth"), []byte(meta), 0o644)
}
