package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"omini/internal/obs"
	"omini/internal/serve"
)

// quietLogger swallows log output so test runs stay readable.
func quietLogger() *obs.Logger {
	return obs.NewLogger(io.Discard, obs.LevelError)
}

// TestGracefulShutdownDrainsInFlight proves the SIGTERM path: once
// shutdown begins, new connections are refused but the in-flight request
// completes before the server exits.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	handler := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(started)
		<-release
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "drained")
	})

	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- serveUntilDone(ctx, ln, handler, quietLogger(), 5*time.Second) }()

	reqDone := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			reqDone <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		reqDone <- string(body)
	}()

	<-started
	cancel() // the SIGTERM moment, with one request in flight

	// The server must not exit while the request is still running.
	select {
	case err := <-serveDone:
		t.Fatalf("server exited before draining: %v", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	if body := <-reqDone; body != "drained" {
		t.Errorf("in-flight response = %q, want %q", body, "drained")
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("serveUntilDone: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server did not exit after drain")
	}
}

// TestServeUntilDoneRunsRealService wires the hardened serve handler in,
// end to end, and shuts it down cleanly.
func TestServeUntilDoneRunsRealService(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- serveUntilDone(ctx, ln, serve.New(serve.Config{Logger: quietLogger()}), quietLogger(), time.Second)
	}()

	resp, err := http.Get("http://" + ln.Addr().String() + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("serveUntilDone: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("shutdown hung")
	}
}
