// Command ominiserve runs Omini as an HTTP extraction service — the
// "scalable information search and aggregation services" deployment the
// paper positions Omini inside (its Figure 3 takes requests from users
// *and applications*). Aggregators POST pages and receive structured
// objects; learned rules and wrappers are cached per site so repeat
// extractions take the fast path.
//
//	ominiserve -addr :8800 &
//	curl -s --data-binary @page.html 'localhost:8800/extract?site=www.example.com'
//	curl -s --data-binary @page.html 'localhost:8800/records?site=www.example.com'
//	curl -s 'localhost:8800/rules'
//
// Endpoints:
//
//	POST /extract?site=S   -> objects, subtree path, separator, confidence
//	POST /records?site=S   -> wrapper records (named fields); learns the
//	                          site's wrapper on first use
//	GET  /rules            -> the cached extraction rules as JSON
//	GET  /healthz          -> liveness
//	GET  /statsz           -> resilience counters (shed, panics, caches)
//
// The service is hardened for production traffic: panics become 500s,
// load past -max-inflight is shed with 429 + Retry-After, every request
// runs under -request-timeout, and SIGTERM/SIGINT trigger a graceful
// shutdown that drains in-flight extractions for up to -shutdown-grace.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"omini/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8800", "listen address")
		maxBytes = flag.Int64("max-bytes", 8<<20, "maximum request body size")
		inflight = flag.Int("max-inflight", 256, "concurrent extraction cap; excess requests get 429 (negative = unlimited)")
		reqTO    = flag.Duration("request-timeout", 30*time.Second, "per-request deadline (negative = none)")
		grace    = flag.Duration("shutdown-grace", 15*time.Second, "drain window for in-flight requests on SIGTERM")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := serve.New(serve.Config{
		MaxBodyBytes:   *maxBytes,
		MaxInFlight:    *inflight,
		RequestTimeout: *reqTO,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ominiserve:", err)
		os.Exit(1)
	}
	log.Printf("ominiserve listening on %s", ln.Addr())
	if err := serveUntilDone(ctx, ln, srv, *grace); err != nil {
		fmt.Fprintln(os.Stderr, "ominiserve:", err)
		os.Exit(1)
	}
}

// serveUntilDone serves on ln until ctx is cancelled (SIGTERM/SIGINT),
// then shuts down gracefully: the listener closes immediately while
// in-flight requests get up to grace to finish draining.
func serveUntilDone(ctx context.Context, ln net.Listener, handler http.Handler, grace time.Duration) error {
	server := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- server.Serve(ln) }()

	select {
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	log.Printf("ominiserve: shutdown requested, draining for up to %v", grace)
	sctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := server.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	log.Printf("ominiserve: drained, exiting")
	return nil
}
