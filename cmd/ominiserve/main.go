// Command ominiserve runs Omini as an HTTP extraction service — the
// "scalable information search and aggregation services" deployment the
// paper positions Omini inside (its Figure 3 takes requests from users
// *and applications*). Aggregators POST pages and receive structured
// objects; learned rules and wrappers are cached per site so repeat
// extractions take the fast path.
//
//	ominiserve -addr :8800 &
//	curl -s --data-binary @page.html 'localhost:8800/extract?site=www.example.com'
//	curl -s --data-binary @page.html 'localhost:8800/records?site=www.example.com'
//	curl -s 'localhost:8800/rules'
//
// Endpoints:
//
//	POST /extract?site=S   -> objects, subtree path, separator, confidence
//	POST /records?site=S   -> wrapper records (named fields); learns the
//	                          site's wrapper on first use
//	GET  /rules            -> the cached extraction rules as JSON
//	GET  /healthz          -> liveness
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"omini/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8800", "listen address")
		maxBytes = flag.Int64("max-bytes", 8<<20, "maximum request body size")
	)
	flag.Parse()
	srv := serve.New(serve.Config{MaxBodyBytes: *maxBytes})
	log.Printf("ominiserve listening on %s", *addr)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fmt.Fprintln(os.Stderr, "ominiserve:", err)
		os.Exit(1)
	}
}
