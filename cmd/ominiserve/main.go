// Command ominiserve runs Omini as an HTTP extraction service — the
// "scalable information search and aggregation services" deployment the
// paper positions Omini inside (its Figure 3 takes requests from users
// *and applications*). Aggregators POST pages and receive structured
// objects; learned rules and wrappers are cached per site so repeat
// extractions take the fast path.
//
//	ominiserve -addr :8800 &
//	curl -s --data-binary @page.html 'localhost:8800/extract?site=www.example.com'
//	curl -s --data-binary @page.html 'localhost:8800/records?site=www.example.com'
//	curl -s 'localhost:8800/rules'
//
// Endpoints:
//
//	POST /extract?site=S   -> objects, subtree path, separator, confidence
//	POST /extract?trace=1  -> same, plus the inline JSON decision trace
//	POST /records?site=S   -> wrapper records (named fields); learns the
//	                          site's wrapper on first use
//	GET  /rules            -> the cached extraction rules as JSON
//	GET  /rulesz           -> wrapper-farm state: per-site rule versions,
//	                          hit counts, drift-check readiness, store size
//	GET  /tracez           -> tail-sampled distributed traces (errored and
//	                          slowest pinned); ?id=<traceId> for one span tree
//	GET  /healthz          -> liveness
//	GET  /readyz           -> readiness (503 until the -rules snapshot loads)
//	GET  /statsz           -> JSON counter snapshot of the metrics registry
//	GET  /metricsz         -> Prometheus-style exposition: counters, gauges,
//	                          per-phase latency histograms with p50/p95/p99
//	GET  /debug/pprof/*    -> the Go runtime profiles
//
// The service is hardened for production traffic: panics become 500s (and
// are counted and stack-logged), load past -max-inflight is shed with 429 +
// Retry-After, every request runs under -request-timeout, and
// SIGTERM/SIGINT trigger a graceful shutdown that drains in-flight
// extractions for up to -shutdown-grace. All logging is structured JSON on
// stderr (one object per line), filtered by -log-level; each request emits
// one access-log line carrying its decision summary.
//
// Extraction requests are distributed-traced: -trace-sample sets the
// fraction recorded (default 1.0; ?trace=1 always traces, and a cluster
// coordinator's X-Omini-Trace header decision always wins), and the last
// -tracez-capacity traces — errored and slowest pinned — are inspectable
// on GET /tracez. Trace IDs appear in access-log lines, error bodies,
// histogram exemplars and the X-Omini-Trace response header.
//
// Learned rules live in the wrapper farm: the first request for a host
// runs discovery (concurrent first requests coalesce into one), later
// requests replay the learned rule, and a background revalidator
// drift-checks sampled fast-path pages every -relearn-interval so a
// site redesign evicts and relearns its rule. With -rule-store the
// farm persists across restarts (versioned JSON, atomic writes, saved
// on change and at shutdown); a store file also loads via -rules.
//
// Cluster mode (-cluster) puts a consistent-hash router in front of the
// local server: sites are sharded across the -peers nodes (keeping each
// node's rule cache hot for its shard), membership is tracked by health
// probes with ejection and re-admission, failed hops fail over along
// the ring, and with every peer down the node degrades to local
// extraction. -node-id names this node among the peers; GET /clusterz
// reports ring membership and per-node latency:
//
//	ominiserve -addr :8800 -cluster -node-id a \
//	    -peers 'a=http://10.0.0.1:8800,b=http://10.0.0.2:8800,c=http://10.0.0.3:8800'
//
// Clustered nodes also replicate learned rules so failover is warm: on
// start (and re-admission) a node pulls its peers' rules before /readyz
// flips (-sync-on-join; bounded, degrades to learn-on-miss), and a
// background anti-entropy loop (-antientropy-interval) reconciles
// divergent rule versions cluster-wide — highest version wins, and
// drift evictions propagate as tombstones so a stale peer cannot
// resurrect a dead rule. GET /rulesz?view=digest and ?view=sync are the
// replication wire surface.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"omini/internal/cluster"
	"omini/internal/core"
	"omini/internal/obs"
	"omini/internal/ruledist"
	"omini/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8800", "listen address")
		maxBytes = flag.Int64("max-bytes", 8<<20, "maximum request body size")
		inflight = flag.Int("max-inflight", 256, "concurrent extraction cap; excess requests get 429 (negative = unlimited)")
		reqTO    = flag.Duration("request-timeout", 30*time.Second, "per-request deadline (negative = none)")
		grace    = flag.Duration("shutdown-grace", 15*time.Second, "drain window for in-flight requests on SIGTERM")
		logLevel = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		timeout  = flag.Duration("timeout", 0, "per-page extraction deadline enforced by the resource governor (0 = default 10s, negative = unlimited)")

		rulesFile  = flag.String("rules", "", "rules snapshot to load at boot; /readyz stays 503 until it loads")
		ruleStore  = flag.String("rule-store", "", "persist learned rules here (versioned JSON, atomic writes); loaded on boot, saved on change and on shutdown")
		relearnIvl = flag.Duration("relearn-interval", time.Minute, "background drift-revalidation sweep period (negative = disabled)")
		clustered  = flag.Bool("cluster", false, "enable cluster mode: consistent-hash route sites across -peers")
		peers      = flag.String("peers", "", "cluster members as id=url pairs, comma-separated (e.g. 'a=http://h1:8800,b=http://h2:8800')")
		nodeID     = flag.String("node-id", "", "this node's id among -peers (empty = pure coordinator)")
		probeIvl   = flag.Duration("probe-interval", time.Second, "cluster health-check period")
		syncJoin   = flag.Bool("sync-on-join", true, "pull learned rules from peers before flipping /readyz (cluster mode)")
		aeIvl      = flag.Duration("antientropy-interval", 30*time.Second, "background rule anti-entropy sync period (negative = disabled)")

		traceSample = flag.Float64("trace-sample", 1.0, "fraction of extraction requests distributed-traced (0 = none; ?trace=1 always traces)")
		tracezCap   = flag.Int("tracez-capacity", obs.DefaultTraceCapacity, "traces kept for GET /tracez (errored and slowest pinned)")
	)
	flag.Parse()

	logger := obs.NewLogger(os.Stderr, obs.ParseLevel(*logLevel))
	obs.SetDefaultLogger(logger)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The resource governor mirrors the HTTP body cap so a page admitted
	// by the server is also admitted by the extractor, and adds the
	// per-page deadline on top of the per-request one.
	limits := core.Limits{MaxInputBytes: int(*maxBytes), Deadline: *timeout}
	// The flag speaks operator language (0 = off); the Config zero value
	// means "default", so an explicit zero maps to the negative sentinel.
	sampleRate := *traceSample
	if sampleRate <= 0 {
		sampleRate = -1
	}
	// Peers parse before serve.New: whether /readyz defers on a join
	// sync depends on there being someone to sync from.
	var peerMap map[string]string
	if *clustered {
		var err error
		peerMap, err = parsePeers(*peers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ominiserve:", err)
			os.Exit(1)
		}
	}
	otherPeers := len(peerMap)
	if _, ok := peerMap[*nodeID]; ok {
		otherPeers--
	}
	deferReady := *clustered && *syncJoin && otherPeers > 0
	srv := serve.New(serve.Config{
		MaxBodyBytes:    *maxBytes,
		MaxInFlight:     *inflight,
		RequestTimeout:  *reqTO,
		Limits:          limits,
		Logger:          logger,
		RulesFile:       *rulesFile,
		RuleStorePath:   *ruleStore,
		RelearnInterval: *relearnIvl,
		TraceSampleRate: sampleRate,
		TraceCapacity:   *tracezCap,
		DeferReady:      deferReady,
	})
	// The farm's background loop: drift-sample revalidation plus
	// periodic rule-store flushes. It stops with the signal context;
	// the post-drain Close below writes the final snapshot.
	go func() { _ = srv.Run(ctx) }()

	var handler http.Handler = srv
	if *clustered {
		// The rule-replication layer: a join-time warm-up pull before
		// /readyz flips, a low-rate background anti-entropy loop, and an
		// immediate round whenever the prober re-admits a peer (its rules
		// may have moved while it was out).
		var repl *ruledist.Replicator
		if otherPeers > 0 {
			var err error
			repl, err = ruledist.New(ruledist.Config{
				Self:     *nodeID,
				Peers:    peerMap,
				Farm:     srv.Farm(),
				Interval: *aeIvl,
				Logger:   logger,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "ominiserve:", err)
				os.Exit(1)
			}
			go func() { _ = repl.Run(ctx) }()
		}
		coord := cluster.New(cluster.Config{
			Self:          *nodeID,
			Peers:         peerMap,
			Local:         srv,
			ProbeInterval: *probeIvl,
			MaxBodyBytes:  *maxBytes,
			Logger:        logger,
			// One sink per node: the coordinator's route/hop half and the
			// server's handler half of a self-served trace merge on /tracez.
			Traces:          srv.Traces(),
			TraceSampleRate: sampleRate,
			OnReadmission: func(string) {
				if repl != nil {
					repl.Kick()
				}
			},
		})
		go func() { _ = coord.Run(ctx) }()
		if deferReady {
			// Warm up before taking shard traffic: pull previously-learned
			// rules from ring peers, then flip /readyz whatever happened —
			// a failed or budget-expired sync degrades to learn-on-miss.
			go func() {
				_ = repl.SyncOnJoin(ctx)
				srv.MarkReady()
			}()
		}
		handler = coord
		logger.Info("cluster mode", "self", *nodeID, "peers", len(peerMap),
			"sync_on_join", deferReady)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ominiserve:", err)
		os.Exit(1)
	}
	// The "addr" field is load-bearing: with -addr :0, scripts (see
	// scripts/ci.sh) parse it to find the chosen port.
	logger.Info("ominiserve listening", "addr", ln.Addr().String())
	if err := serveUntilDone(ctx, ln, handler, logger, *grace); err != nil {
		fmt.Fprintln(os.Stderr, "ominiserve:", err)
		os.Exit(1)
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "ominiserve: rule store save:", err)
		os.Exit(1)
	}
}

// parsePeers parses the -peers flag: comma-separated id=url pairs.
func parsePeers(s string) (map[string]string, error) {
	peers := make(map[string]string)
	if strings.TrimSpace(s) == "" {
		return peers, nil
	}
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		id, rawurl, ok := strings.Cut(pair, "=")
		id, rawurl = strings.TrimSpace(id), strings.TrimSpace(rawurl)
		if !ok || id == "" || rawurl == "" {
			return nil, fmt.Errorf("bad -peers entry %q: want id=url", pair)
		}
		u, err := url.Parse(rawurl)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("bad -peers url %q: want http://host:port", rawurl)
		}
		if _, dup := peers[id]; dup {
			return nil, fmt.Errorf("duplicate -peers id %q", id)
		}
		peers[id] = strings.TrimRight(rawurl, "/")
	}
	return peers, nil
}

// serveUntilDone serves on ln until ctx is cancelled (SIGTERM/SIGINT),
// then shuts down gracefully: the listener closes immediately while
// in-flight requests get up to grace to finish draining.
func serveUntilDone(ctx context.Context, ln net.Listener, handler http.Handler, logger *obs.Logger, grace time.Duration) error {
	server := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- server.Serve(ln) }()

	select {
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	logger.Info("shutdown requested", "grace", grace)
	sctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := server.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	logger.Info("drained, exiting")
	return nil
}
