// Command omini extracts data objects from a web page — a URL, a local
// file, or standard input — using the fully automated Omini pipeline.
//
//	omini http://example.com/search?q=go
//	omini -json page.html
//	omini -tree page.html           # show the tag tree instead
//	omini -trace page.html          # JSON decision trace: why this result
//	omini -metrics page.html        # dump pipeline metrics to stderr
//	omini -rules rules.json -site www.example.com page.html
//
// With -rules, discovered extraction rules are cached per site and replayed
// on later runs (the paper's Section 6.6 fast path); the file may be a
// legacy rules array or an ominiserve -rule-store snapshot — the wrapper
// farm's persisted store and the CLI cache are interchangeable. With
// -trace, the run
// emits a JSON decision trace — subtree rankings, each separator
// heuristic's votes, the combined probabilities, and per-phase wall/alloc
// costs — explaining why the pipeline chose what it chose. With -metrics,
// the process's metrics registry is written to stderr in Prometheus text
// form after extraction.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"omini"
	"omini/internal/fetch"
	"omini/internal/obs"
	"omini/internal/resilience"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "omini:", err)
		os.Exit(1)
	}
}

type objectJSON struct {
	Index int    `json:"index"`
	Text  string `json:"text"`
	Size  int    `json:"sizeBytes"`
}

type resultJSON struct {
	SubtreePath string             `json:"subtreePath"`
	Separator   string             `json:"separator"`
	Objects     []objectJSON       `json:"objects"`
	Trace       *obs.DecisionTrace `json:"trace,omitempty"`
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("omini", flag.ContinueOnError)
	var (
		asJSON    = fs.Bool("json", false, "emit objects as JSON")
		asTree    = fs.Bool("tree", false, "print the page's tag tree and exit")
		treeDepth = fs.Int("depth", 4, "tag tree depth for -tree")
		noRefine  = fs.Bool("no-refine", false, "skip Phase 3 refinement")
		rulesPath = fs.String("rules", "", "JSON rule cache to read/update")
		site      = fs.String("site", "", "site name for the rule cache (default: derived from URL)")
		cacheDir  = fs.String("cache", "", "page cache directory for URL fetches")
		trace     = fs.Bool("trace", false, "emit a JSON decision trace explaining the extraction")
		metrics   = fs.Bool("metrics", false, "dump the metrics registry to stderr after extraction")
		maxBytes  = fs.Int64("max-bytes", 0, "max page size in bytes for fetch and extraction (0 = default, -1 = unlimited)")
		timeout   = fs.Duration("timeout", 0, "per-page extraction deadline (0 = default, -1s = unlimited)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: omini [flags] <url | file | ->")
	}
	src := fs.Arg(0)
	html, derivedSite, err := readPage(src, *cacheDir, *maxBytes)
	if err != nil {
		return err
	}
	if *site == "" {
		*site = derivedSite
	}

	if *asTree {
		tree, err := omini.RenderTree(html, *treeDepth)
		if err != nil {
			return err
		}
		fmt.Fprint(w, tree)
		return nil
	}

	var opts []omini.Option
	if *noRefine {
		opts = append(opts, omini.WithoutRefinement())
	}
	if *maxBytes != 0 || *timeout != 0 {
		lim := omini.Limits{MaxInputBytes: int(*maxBytes), Deadline: *timeout}
		opts = append(opts, omini.WithLimits(lim))
	}
	extractor := omini.NewExtractor(opts...)

	ctx := context.Background()
	if *trace {
		// One-shot CLI run: alloc sampling is cheap here and makes the
		// per-phase costs complete.
		ctx, _ = obs.WithTraceRecorder(ctx, true)
	}
	res, err := extractWithRules(ctx, extractor, html, *rulesPath, *site)
	if *metrics {
		defer func() { _ = obs.Default.WritePrometheus(os.Stderr) }()
	}
	if err != nil {
		return err
	}

	if *asJSON || *trace {
		out := resultJSON{SubtreePath: res.SubtreePath, Separator: res.Separator, Trace: res.Trace}
		for i, o := range res.Objects {
			out.Objects = append(out.Objects, objectJSON{Index: i + 1, Text: o.Text(), Size: o.Size()})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Fprintf(w, "subtree:   %s\nseparator: %s\nobjects:   %d\n\n",
		res.SubtreePath, res.Separator, len(res.Objects))
	for i, o := range res.Objects {
		fmt.Fprintf(w, "[%2d] %s\n", i+1, o.Text())
	}
	return nil
}

// extractWithRules runs the cached-rule fast path when a rule store is
// configured, falling back to (and recording) full discovery. The context
// carries the trace recorder when -trace asked for one.
func extractWithRules(ctx context.Context, e *omini.Extractor, html, rulesPath, site string) (*omini.Result, error) {
	if rulesPath == "" {
		return e.ExtractResultContext(ctx, html)
	}
	store, err := omini.LoadRules(rulesPath)
	if err != nil {
		if !os.IsNotExist(errors.Unwrap(err)) && !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
		store = omini.NewRuleStore()
	}
	if rule, err := store.Get(site); err == nil {
		if res, err := e.ExtractWithRuleContext(ctx, html, rule); err == nil {
			return res, nil
		}
		// The site changed shape; fall through to rediscovery.
	}
	res, err := e.ExtractResultContext(ctx, html)
	if err != nil {
		return nil, err
	}
	if err := store.Put(res.Rule(site)); err != nil {
		return nil, err
	}
	if err := store.Save(rulesPath); err != nil {
		return nil, err
	}
	return res, nil
}

// readPage loads the page from a URL, a file, or stdin ("-"), returning the
// HTML and a site name derived from the source.
func readPage(src, cacheDir string, maxBytes int64) (html, site string, err error) {
	switch {
	case src == "-":
		body, err := io.ReadAll(os.Stdin)
		return string(body), "stdin", err
	case strings.HasPrefix(src, "http://"), strings.HasPrefix(src, "https://"):
		// Live-web fetches ride the resilience layer: transient upstream
		// failures are retried with backoff before the CLI gives up.
		f := fetch.Fetcher{CacheDir: cacheDir, MaxBytes: maxBytes, Retry: &resilience.RetryPolicy{}}
		ctx, cancel := fetch.WithTimeout(context.Background())
		defer cancel()
		body, err := f.Fetch(ctx, src)
		if err != nil {
			return "", "", err
		}
		host := strings.TrimPrefix(strings.TrimPrefix(src, "https://"), "http://")
		if i := strings.IndexByte(host, '/'); i >= 0 {
			host = host[:i]
		}
		return body, host, nil
	default:
		body, err := os.ReadFile(src)
		return string(body), src, err
	}
}
