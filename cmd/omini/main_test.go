package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"omini/internal/sitegen"
)

// writePage materializes a replica page for CLI runs.
func writePage(t *testing.T, page sitegen.Page) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), page.Name+".html")
	if err := os.WriteFile(path, []byte(page.HTML), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunTextOutput(t *testing.T) {
	path := writePage(t, sitegen.Canoe())
	var out strings.Builder
	if err := run(&out, []string{path}); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{"separator: table", "objects:   12", "Maple Leafs"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	path := writePage(t, sitegen.LOC())
	var out strings.Builder
	if err := run(&out, []string{"-json", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
	var res resultJSON
	if err := json.Unmarshal([]byte(out.String()), &res); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if res.Separator != "hr" && res.Separator != "pre" {
		t.Errorf("separator = %q", res.Separator)
	}
	if len(res.Objects) != 20 {
		t.Errorf("objects = %d, want 20", len(res.Objects))
	}
}

func TestRunTreeOutput(t *testing.T) {
	path := writePage(t, sitegen.LOC())
	var out strings.Builder
	if err := run(&out, []string{"-tree", "-depth", "2", path}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "html") || !strings.Contains(out.String(), "body") {
		t.Errorf("tree output = %q", out.String())
	}
}

func TestRunWithRuleCache(t *testing.T) {
	page := sitegen.Canoe()
	path := writePage(t, page)
	rulesPath := filepath.Join(t.TempDir(), "rules.json")
	var out strings.Builder
	// First run learns and persists a rule.
	if err := run(&out, []string{"-rules", rulesPath, "-site", page.Site, path}); err != nil {
		t.Fatalf("first run: %v", err)
	}
	data, err := os.ReadFile(rulesPath)
	if err != nil {
		t.Fatalf("rules not persisted: %v", err)
	}
	if !strings.Contains(string(data), page.Site) {
		t.Errorf("rules file missing site: %s", data)
	}
	// Second run replays it.
	out.Reset()
	if err := run(&out, []string{"-rules", rulesPath, "-site", page.Site, path}); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !strings.Contains(out.String(), "objects:   12") {
		t.Errorf("replay output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(&out, []string{}); err == nil {
		t.Error("no arguments accepted")
	}
	if err := run(&out, []string{"/no/such/file.html"}); err == nil {
		t.Error("missing file accepted")
	}
	empty := filepath.Join(t.TempDir(), "empty.html")
	if err := os.WriteFile(empty, []byte("<html><body>prose</body></html>"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&out, []string{empty}); err == nil {
		t.Error("object-free page extracted")
	}
}
