// Command ominibench regenerates every table and figure of the paper's
// evaluation (Section 6) on the synthetic corpus, printing each in the
// paper's layout. Run with no flags for the full suite, or select
// experiments:
//
//	ominibench -table 11            # the 26-combination sweep
//	ominibench -table fig5,1,3      # canoe tree, subtree ranking, RP pairs
//	ominibench -pages 10            # smaller corpus for a quick pass
//	ominibench -metrics ...         # dump pipeline metrics to stderr after
//
// Absolute numbers depend on the synthetic corpus (see DESIGN.md §3); the
// shapes — who wins, by how much, where the crossovers fall — reproduce the
// paper. EXPERIMENTS.md records a paper-vs-measured comparison per table.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"omini/internal/combine"
	"omini/internal/core"
	"omini/internal/corpus"
	"omini/internal/eval"
	"omini/internal/obs"
	"omini/internal/separator"
	"omini/internal/sitegen"
	"omini/internal/subtree"
	"omini/internal/tagtree"
)

func main() {
	var (
		tables   = flag.String("table", "all", "comma-separated experiments: fig1,fig5,1,2,3,5,6,8,10,11,13,14,15,16,17,19,20,subtree,objects,sites,confidence or 'all'")
		pages    = flag.Int("pages", 0, "pages per site (0 = paper-sized corpus: 33 test / 60 experimental / 40 comparison)")
		repeats  = flag.Int("repeats", 10, "timing repetitions per page (Tables 16/17)")
		metrics  = flag.Bool("metrics", false, "dump the metrics registry (per-phase histograms, counters) to stderr after the run")
		maxBytes = flag.Int("max-bytes", 0, "resource governor input-size cap for the end-to-end experiments (0 = default, -1 = unlimited)")
		timeout  = flag.Duration("timeout", 0, "resource governor per-page deadline for the end-to-end experiments (0 = default, negative = unlimited)")
	)
	flag.Parse()
	limits := core.Limits{MaxInputBytes: *maxBytes, Deadline: *timeout}
	err := run(os.Stdout, *tables, *pages, *repeats, limits)
	if *metrics {
		// Every extraction the experiments ran recorded its phase spans in
		// the default registry; the exposition shows the aggregate cost
		// profile of the whole suite.
		_ = obs.Default.WritePrometheus(os.Stderr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ominibench:", err)
		os.Exit(1)
	}
}

// harness carries the lazily prepared corpus shared by the experiments.
type harness struct {
	w       io.Writer
	corpus  *corpus.Corpus
	repeats int
	limits  core.Limits

	heuristics []separator.Heuristic
	testPrep   []eval.PreparedSite
	expPrep    []eval.PreparedSite
	cmpPrep    []eval.PreparedSite
	probs      combine.ProbTable
}

func run(w io.Writer, tables string, pages, repeats int, limits core.Limits) error {
	h := &harness{
		w:          w,
		corpus:     &corpus.Corpus{PagesPerSite: pages},
		repeats:    repeats,
		limits:     limits,
		heuristics: append(separator.All(), separator.HC(), separator.IT()),
	}
	type experiment struct {
		name string
		desc string
		run  func() error
	}
	experiments := []experiment{
		{"fig1", "Figures 1-2: Library of Congress tag tree and minimal subtree", h.figureLOC},
		{"fig5", "Figures 4-5: canoe.com tag tree", h.figureCanoe},
		{"1", "Table 1: HF vs GSI vs LTC top-5 subtrees on the canoe tree", h.table1},
		{"2", "Table 2: SD values on the LOC minimal subtree", h.table2},
		{"3", "Table 3: RP pair ranking on the canoe subtree", h.table3},
		{"5", "Tables 4-5: IPS tag lists and measured separator distribution", h.table5},
		{"6", "Table 6: SB sibling pairs on canoe and LOC", h.table6},
		{"8", "Tables 7-8: PP paths and tag rankings", h.table8},
		{"10", "Table 10: heuristic rank probabilities, test set", h.table10},
		{"11", "Table 11: success of all 26 heuristic combinations, test set", h.table11},
		{"13", "Table 13: heuristic rank probabilities incl. RSIPB, experimental set", h.table13},
		{"14", "Table 14: success/precision/recall, test set", h.table14},
		{"15", "Table 15: success/precision/recall, experimental set", h.table15},
		{"16", "Table 16: per-phase execution time, full discovery", h.table16},
		{"17", "Table 17: per-phase execution time, cached rules", h.table17},
		{"19", "Table 19: Omini vs BYU on the comparison sites", h.table19},
		{"20", "Table 20: BYU heuristics and combinations, test set", h.table20},
		{"subtree", "Extra: subtree heuristic success (HF/GSI/LTC/Compound)", h.tableSubtree},
		{"objects", "Extra: end-to-end object precision/recall (abstract claim)", h.tableObjects},
		{"sites", "Extra: per-site success breakdown (test set)", h.tableSites},
		{"confidence", "Extra: confidence calibration (feedback-based refinement hook)", h.tableConfidence},
	}
	want := make(map[string]bool)
	all := tables == "all"
	for _, t := range strings.Split(tables, ",") {
		want[strings.TrimSpace(t)] = true
	}
	for _, ex := range experiments {
		if !all && !want[ex.name] {
			continue
		}
		fmt.Fprintf(w, "=== %s ===\n", ex.desc)
		if err := ex.run(); err != nil {
			return fmt.Errorf("%s: %w", ex.name, err)
		}
	}
	return nil
}

// prepare memoizes the heavy per-set preparation.
func (h *harness) prepare(which string) ([]eval.PreparedSite, error) {
	var (
		cache *[]eval.PreparedSite
		sites []corpus.SitePages
	)
	switch which {
	case "test":
		cache, sites = &h.testPrep, h.corpus.TestSet()
	case "experimental":
		cache, sites = &h.expPrep, h.corpus.ExperimentalSet()
	default:
		cache, sites = &h.cmpPrep, h.corpus.ComparisonSet()
	}
	if *cache == nil {
		prep, err := eval.Prepare(sites, h.heuristics)
		if err != nil {
			return nil, err
		}
		*cache = prep
	}
	return *cache, nil
}

// measuredProbs memoizes the test-set probability table used as combination
// evidence (the paper's use of Table 10).
func (h *harness) measuredProbs() (combine.ProbTable, error) {
	if h.probs == nil {
		prep, err := h.prepare("test")
		if err != nil {
			return nil, err
		}
		h.probs = eval.MeasureProbs(prep, h.heuristics)
	}
	return h.probs, nil
}

func (h *harness) figureLOC() error {
	page := sitegen.LOC()
	root, err := tagtree.Parse(page.HTML)
	if err != nil {
		return err
	}
	fmt.Fprintf(h.w, "%s\n", tagtree.Render(root, tagtree.RenderOptions{MaxDepth: 3, ShowMetrics: true}))
	sub := tagtree.FindPath(root, page.Truth.SubtreePath)
	hrs := root.FindAll("hr")
	min := tagtree.MinimalSubtree(hrs)
	fmt.Fprintf(h.w, "minimal subtree containing all %d hr nodes: %s (truth: %s)\n",
		len(hrs), tagtree.Path(min), tagtree.Path(sub))
	fmt.Fprintf(h.w, "child tag counts: %s\n\n", tagtree.Outline(sub))
	return nil
}

func (h *harness) figureCanoe() error {
	page := sitegen.Canoe()
	root, err := tagtree.Parse(page.HTML)
	if err != nil {
		return err
	}
	fmt.Fprintf(h.w, "%s\n", tagtree.Render(root, tagtree.RenderOptions{MaxDepth: 4, ShowMetrics: true}))
	sub := tagtree.FindPath(root, page.Truth.SubtreePath)
	fmt.Fprintf(h.w, "object-rich subtree: %s, %s\n\n", page.Truth.SubtreePath, tagtree.Outline(sub))
	return nil
}

func (h *harness) table1() error {
	root, err := tagtree.Parse(sitegen.Canoe().HTML)
	if err != nil {
		return err
	}
	fmt.Fprintf(h.w, "%-4s  %-55s %-12s\n", "Rank", "Subtree", "Score")
	for _, heur := range []subtree.Heuristic{subtree.HF(), subtree.GSI(), subtree.LTC(), subtree.Compound()} {
		fmt.Fprintf(h.w, "-- %s --\n", heur.Name())
		for i, r := range subtree.Top(heur.Rank(root), 5) {
			fmt.Fprintf(h.w, "%-4d  %-55s %12.1f\n", i+1, tagtree.Path(r.Node), r.Score)
		}
	}
	fmt.Fprintln(h.w)
	return nil
}

func (h *harness) table2() error {
	page := sitegen.LOC()
	sub, err := truthSubtree(page)
	if err != nil {
		return err
	}
	fmt.Fprintf(h.w, "%-4s %-6s %s\n", "Rank", "Tag", "Standard Deviation")
	for i, r := range separator.SD().Rank(sub) {
		fmt.Fprintf(h.w, "%-4d %-6s %8.1f\n", i+1, r.Tag, r.Score)
	}
	fmt.Fprintln(h.w)
	return nil
}

func (h *harness) table3() error {
	sub, err := truthSubtree(sitegen.Canoe())
	if err != nil {
		return err
	}
	fmt.Fprintf(h.w, "%-16s %-10s %s\n", "Tag Pair", "Pair Count", "Difference")
	for _, p := range separator.RPPairs(sub) {
		fmt.Fprintf(h.w, "%-16s %-10d %d\n", p.Pair.First+", "+p.Pair.Second, p.Count, p.Diff)
	}
	fmt.Fprintln(h.w)
	return nil
}

func (h *harness) table5() error {
	fmt.Fprintf(h.w, "IPS per-subtree tag lists (Table 4, from the paper):\n")
	fmt.Fprintf(h.w, "global IPSList: %s\n\n", strings.Join(separator.IPSList, ","))
	// Table 5: distribution of ground-truth separator tags over the
	// corpus, the measured analogue of the paper's usage statistics.
	counts := make(map[string]int)
	total := 0
	for _, spec := range corpus.AllSpecs() {
		page := spec.Page(0)
		counts[page.Truth.Separators[0]]++
		total++
	}
	type row struct {
		tag string
		pct float64
	}
	rows := make([]row, 0, len(counts))
	for tag, n := range counts {
		rows = append(rows, row{tag, 100 * float64(n) / float64(total)})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].pct != rows[j].pct {
			return rows[i].pct > rows[j].pct
		}
		return rows[i].tag < rows[j].tag
	})
	fmt.Fprintf(h.w, "%-10s %s\n", "Tag", "% of sites using it as object separator")
	for _, r := range rows {
		fmt.Fprintf(h.w, "%-10s %5.1f\n", r.tag, r.pct)
	}
	fmt.Fprintln(h.w)
	return nil
}

func (h *harness) table6() error {
	for _, page := range []sitegen.Page{sitegen.Canoe(), sitegen.LOC()} {
		sub, err := truthSubtree(page)
		if err != nil {
			return err
		}
		fmt.Fprintf(h.w, "-- %s --\n%-16s %s\n", page.Site, "Pair", "Count")
		for _, p := range separator.SBPairs(sub) {
			fmt.Fprintf(h.w, "%-16s %d\n", p.Pair.First+", "+p.Pair.Second, p.Count)
		}
	}
	fmt.Fprintln(h.w)
	return nil
}

func (h *harness) table8() error {
	for _, page := range []sitegen.Page{sitegen.Canoe(), sitegen.LOC()} {
		sub, err := truthSubtree(page)
		if err != nil {
			return err
		}
		fmt.Fprintf(h.w, "-- %s partial paths --\n", page.Site)
		paths := separator.PPPaths(sub)
		for i, pc := range paths {
			if i >= 12 {
				fmt.Fprintf(h.w, "... (%d more)\n", len(paths)-i)
				break
			}
			fmt.Fprintf(h.w, "%-44s %d\n", pc.Path, pc.Count)
		}
		fmt.Fprintf(h.w, "-- %s PP tag ranking --\n", page.Site)
		for i, r := range separator.PP().Rank(sub) {
			fmt.Fprintf(h.w, "%d. %-8s %.0f\n", i+1, r.Tag, r.Score)
		}
	}
	fmt.Fprintln(h.w)
	return nil
}

func (h *harness) table10() error {
	prep, err := h.prepare("test")
	if err != nil {
		return err
	}
	eval.WriteDistTable(h.w, "Probability rankings for object separator heuristics (test data)",
		h.dists(prep, separator.All(), nil))
	return nil
}

func (h *harness) table11() error {
	prep, err := h.prepare("test")
	if err != nil {
		return err
	}
	probs, err := h.measuredProbs()
	if err != nil {
		return err
	}
	sweep := eval.SweepCombinations(separator.All(), probs, prep)
	eval.WriteComboTable(h.w, "Success rates for heuristic combinations (test data)", sweep)
	return nil
}

func (h *harness) table13() error {
	prep, err := h.prepare("experimental")
	if err != nil {
		return err
	}
	probs, err := h.measuredProbs()
	if err != nil {
		return err
	}
	dists := h.dists(prep, separator.All(), nil)
	dists = append(dists, eval.CombinationDist(combine.RSIPB(), probs, prep))
	eval.WriteDistTable(h.w, "Probability rankings incl. RSIPB (experimental data)", dists)
	return nil
}

func (h *harness) table14() error { return h.prTable("test", "Success/precision/recall (test data)") }

func (h *harness) table15() error {
	return h.prTable("experimental", "Success/precision/recall (experimental data)")
}

func (h *harness) prTable(set, title string) error {
	prep, err := h.prepare(set)
	if err != nil {
		return err
	}
	probs, err := h.measuredProbs()
	if err != nil {
		return err
	}
	dists := h.dists(prep, separator.All(), nil)
	dists = append(dists, eval.CombinationDist(combine.RSIPB(), probs, prep))
	eval.WritePRTable(h.w, title, dists)
	return nil
}

func (h *harness) table16() error { return h.timing(false) }

func (h *harness) table17() error { return h.timing(true) }

func (h *harness) timing(useRules bool) error {
	opts := eval.TimingOptions{Repeats: h.repeats, UseRules: useRules}
	test, err := eval.MeasureTiming("Test", h.corpus.TestSet(), opts)
	if err != nil {
		return err
	}
	exp, err := eval.MeasureTiming("Experimental", h.corpus.ExperimentalSet(), opts)
	if err != nil {
		return err
	}
	combined := eval.CombineRows("Combined", test, exp)
	title := "Execution time for object extraction (full discovery)"
	if useRules {
		title = "Execution time for object extraction with cached rules"
	}
	eval.WriteTimingTable(h.w, title, !useRules, []eval.TimingRow{test, exp, combined})
	return nil
}

func (h *harness) table19() error {
	prep, err := h.prepare("comparison")
	if err != nil {
		return err
	}
	probs, err := h.measuredProbs()
	if err != nil {
		return err
	}
	fmt.Fprintf(h.w, "%-10s %-8s      %-10s %-8s\n", "Embley", "Success", "Extended", "Success")
	pairs := [][2]string{{"RP", "RP"}, {"SD", "SD"}, {"IT", "IPS"}, {"HC", "SB"}, {"", "PP"}}
	for _, p := range pairs {
		left, right := "", ""
		if p[0] != "" {
			d := eval.HeuristicDist(p[0], prep)
			left = fmt.Sprintf("%-10s %-8.0f", p[0], d.Success*100)
		} else {
			left = fmt.Sprintf("%-10s %-8s", "", "")
		}
		d := eval.HeuristicDist(p[1], prep)
		right = fmt.Sprintf("%-10s %-8.0f", p[1], d.Success*100)
		fmt.Fprintf(h.w, "%s      %s\n", left, right)
	}
	byu := eval.CombinationDist(combine.HTRS(), probs, prep)
	omini := eval.CombinationDist(combine.RSIPB(), probs, prep)
	fmt.Fprintf(h.w, "%-10s %-8.0f      %-10s %-8.0f\n\n", "HTRS", byu.Success*100, "RSIPB", omini.Success*100)
	return nil
}

func (h *harness) table20() error {
	prep, err := h.prepare("test")
	if err != nil {
		return err
	}
	probs, err := h.measuredProbs()
	if err != nil {
		return err
	}
	byuHeuristics := combine.HTRS().Heuristics
	eval.WriteDistTable(h.w, "BYU heuristics (test data)", h.dists(prep, byuHeuristics, nil))
	var combos []eval.Dist
	for _, c := range combine.Combinations(byuHeuristics, 2) {
		combos = append(combos, eval.CombinationDist(c, probs, prep))
	}
	eval.WriteDistTable(h.w, "BYU combinations (test data)", combos)
	return nil
}

func (h *harness) tableSubtree() error {
	for _, set := range []struct {
		name  string
		sites []corpus.SitePages
	}{
		{"test", h.corpus.TestSet()},
		{"experimental", h.corpus.ExperimentalSet()},
	} {
		dists, err := eval.SubtreeSweep(set.sites)
		if err != nil {
			return err
		}
		eval.WriteSubtreeTable(h.w, "Object-rich subtree heuristics ("+set.name+" data)", dists)
	}
	return nil
}

// dists evaluates the given heuristics over prepared sites.
func (h *harness) dists(prep []eval.PreparedSite, hs []separator.Heuristic, _ combine.ProbTable) []eval.Dist {
	out := make([]eval.Dist, 0, len(hs))
	for _, heur := range hs {
		out = append(out, eval.HeuristicDist(heur.Name(), prep))
	}
	return out
}

func (h *harness) tableObjects() error {
	fmt.Fprintf(h.w, "%-14s %10s %8s %8s\n", "Collection", "Precision", "Recall", "Pages")
	for _, set := range []struct {
		name  string
		sites []corpus.SitePages
	}{
		{"Test", h.corpus.TestSet()},
		{"Experimental", h.corpus.ExperimentalSet()},
		{"Comparison", h.corpus.ComparisonSet()},
	} {
		pr := eval.MeasureObjectPR(set.name, set.sites, core.Options{Limits: h.limits})
		fmt.Fprintf(h.w, "%-14s %10.3f %8.3f %8d\n", pr.Label, pr.Precision, pr.Recall, pr.Pages)
	}
	fmt.Fprintln(h.w)
	return nil
}

func (h *harness) tableSites() error {
	prep, err := h.prepare("test")
	if err != nil {
		return err
	}
	probs, err := h.measuredProbs()
	if err != nil {
		return err
	}
	combined := make(map[string]float64, len(prep))
	for _, site := range prep {
		one := []eval.PreparedSite{site}
		combined[site.Site] = eval.CombinationDist(combine.RSIPB(), probs, one).Success
	}
	names := []string{"SD", "RP", "IPS", "PP", "SB", "HC", "IT"}
	eval.WriteSiteBreakdown(h.w, "Per-site separator success (test data)", prep, names, combined)
	return nil
}

func (h *harness) tableConfidence() error {
	sites := append(h.corpus.TestSet(), h.corpus.ComparisonSet()...)
	buckets := eval.ConfidenceCalibration(sites, nil)
	fmt.Fprintf(h.w, "%-16s %8s %9s\n", "Confidence", "Pages", "Accuracy")
	for _, b := range buckets {
		fmt.Fprintf(h.w, "[%4.2f, %4.2f)     %8d %9.2f\n", b.Lo, b.Hi, b.Pages, b.Accuracy)
	}
	fmt.Fprintln(h.w)
	return nil
}

func truthSubtree(page sitegen.Page) (*tagtree.Node, error) {
	root, err := tagtree.Parse(page.HTML)
	if err != nil {
		return nil, err
	}
	sub := tagtree.FindPath(root, page.Truth.SubtreePath)
	if sub == nil {
		return nil, fmt.Errorf("truth path %q unresolvable", page.Truth.SubtreePath)
	}
	return sub, nil
}
