package main

import (
	"strings"
	"testing"

	"omini/internal/core"
)

// The full suite at a tiny corpus size must produce every section without
// error — a smoke test that each experiment's plumbing stays wired.
func TestRunAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus evaluation in -short mode")
	}
	var out strings.Builder
	if err := run(&out, "all", 2, 1, core.Limits{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"Figures 1-2", "Figures 4-5",
		"Table 1:", "Table 2:", "Table 3:", "Tables 4-5", "Table 6:",
		"Tables 7-8", "Table 10:", "Table 11:", "Table 13:", "Table 14:",
		"Table 15:", "Table 16:", "Table 17:", "Table 19:", "Table 20:",
		"subtree heuristic success", "object precision/recall",
		"RSIPB", "HTRS",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSelectedTables(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "2,3", 1, 1, core.Limits{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "Table 2:") || !strings.Contains(got, "Table 3:") {
		t.Errorf("selected tables missing:\n%s", got)
	}
	if strings.Contains(got, "Table 16:") {
		t.Error("unselected table printed")
	}
}

func TestRunUnknownTableIsNoop(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "nope", 1, 1, core.Limits{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if strings.Contains(out.String(), "===") {
		t.Errorf("unknown selection produced output:\n%s", out.String())
	}
}
